//! Seeded fault injection for the DTSVLIW machine.
//!
//! The paper's correctness story rests on runtime validation — branch
//! tags (§3.8), alias order/cross bits (§3.10) and Hwu–Patt
//! checkpointing (§3.11) — but a simulator that aborts on the first
//! divergence never exercises those mechanisms under stress. This crate
//! supplies the stress: a [`FaultPlan`] names *fault sites* (places in
//! the machine where state can rot), a [`FaultInjector`] decides
//! deterministically — from a seed — when each site fires, and
//! [`corrupt`] implements the actual block mutations. The machine
//! detects the damage through its existing oracle (test-mode lockstep)
//! or a block-integrity checksum, quarantines the offending VLIW Cache
//! line, replays the trace segment on the Primary Processor and keeps
//! running; [`FaultStats`] counts every step of that pipeline so
//! campaigns can report detection and recovery *rates* instead of
//! anecdotes.
//!
//! Everything here is deterministic: the same `(plan, seed, workload)`
//! triple reproduces the same faults, detections and recoveries
//! bit-for-bit.

pub mod corrupt;

use dtsvliw_json::{Json, ToJson};

// ---------------------------------------------------------------------
// Deterministic PRNG
// ---------------------------------------------------------------------

/// SplitMix64: a tiny, fast, seed-reproducible PRNG. Not cryptographic —
/// fault campaigns need reproducibility, not unpredictability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seeded generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; 0 when `n` is 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The raw generator state (machine snapshots).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// A generator resumed at a previously captured [`Rng64::state`].
    pub fn from_state(state: u64) -> Self {
        Rng64 { state }
    }
}

// ---------------------------------------------------------------------
// Fault sites
// ---------------------------------------------------------------------

/// Number of distinct fault sites.
pub const NUM_SITES: usize = 6;

/// A place in the machine where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Flip one bit of an operand field of a scheduled instruction
    /// resident in the VLIW Cache (an SEU in the cache SRAM).
    CacheBitFlip,
    /// Corrupt the next-block-address store of a cached block, so the
    /// chain follows a stale/wrong address (§3.4's nba store going bad).
    StaleNba,
    /// Zero the branch tag of an operation scheduled under a branch, so
    /// it commits even when the branch leaves the recorded direction
    /// (§3.8's tag system inverting).
    BranchTagInvert,
    /// Make the VLIW Engine's aliasing detector miss: either suppress
    /// the next detected alias outright or cap the load/store lists so
    /// entries overflow and drop (§3.10 false negatives).
    AliasFalseNegative,
    /// Truncate the checkpoint-recovery store list before the next
    /// rollback unwinds it, leaving memory partially restored (§3.11's
    /// recovery list losing entries).
    RecoveryTruncate,
    /// Drop a COPY companion from a sealed block before it is installed:
    /// the renamed value never commits architecturally (a §3.2 split
    /// whose second half is lost).
    SchedMisSplit,
}

impl FaultSite {
    /// Every site, in stable report order.
    pub const ALL: [FaultSite; NUM_SITES] = [
        FaultSite::CacheBitFlip,
        FaultSite::StaleNba,
        FaultSite::BranchTagInvert,
        FaultSite::AliasFalseNegative,
        FaultSite::RecoveryTruncate,
        FaultSite::SchedMisSplit,
    ];

    /// Stable index into per-site counter arrays.
    pub fn index(self) -> usize {
        match self {
            FaultSite::CacheBitFlip => 0,
            FaultSite::StaleNba => 1,
            FaultSite::BranchTagInvert => 2,
            FaultSite::AliasFalseNegative => 3,
            FaultSite::RecoveryTruncate => 4,
            FaultSite::SchedMisSplit => 5,
        }
    }

    /// Stable kebab-case name (CLI `--sites`, JSON report keys, trace
    /// event payloads).
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::CacheBitFlip => "cache-bit-flip",
            FaultSite::StaleNba => "stale-nba",
            FaultSite::BranchTagInvert => "branch-tag-invert",
            FaultSite::AliasFalseNegative => "alias-false-negative",
            FaultSite::RecoveryTruncate => "recovery-truncate",
            FaultSite::SchedMisSplit => "sched-mis-split",
        }
    }

    /// Parse a [`FaultSite::label`] back.
    pub fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|f| f.label() == s)
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

// ---------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------

/// One armed fault site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The site to inject at.
    pub site: FaultSite,
    /// Per-opportunity injection probability in `[0, 1]`.
    pub probability: f64,
    /// Maximum number of injections (0 = unlimited).
    pub max: u32,
}

/// A seeded fault campaign for one run, threaded through
/// `MachineConfig`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// PRNG seed: equal plans reproduce equal campaigns.
    pub seed: u64,
    /// The armed sites. A site absent here never fires.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan arming a single site.
    pub fn single(site: FaultSite, probability: f64, max: u32, seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: vec![FaultSpec {
                site,
                probability,
                max,
            }],
        }
    }

    /// A plan arming every site at the same probability.
    pub fn all_sites(probability: f64, max_each: u32, seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: FaultSite::ALL
                .iter()
                .map(|&site| FaultSpec {
                    site,
                    probability,
                    max: max_each,
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Injector
// ---------------------------------------------------------------------

/// Draws the per-opportunity injection decisions for one run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: Rng64,
    specs: [Option<FaultSpec>; NUM_SITES],
    injected: [u64; NUM_SITES],
}

impl FaultInjector {
    /// An injector for `plan`. A later spec for the same site replaces
    /// an earlier one.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut specs = [None; NUM_SITES];
        for s in &plan.specs {
            specs[s.site.index()] = Some(*s);
        }
        FaultInjector {
            rng: Rng64::new(plan.seed ^ 0xd75_1a1f),
            specs,
            injected: [0; NUM_SITES],
        }
    }

    /// Is `site` armed at all?
    pub fn armed(&self, site: FaultSite) -> bool {
        self.specs[site.index()].is_some()
    }

    /// Decide whether `site` fires at this opportunity. Draws from the
    /// seeded stream only for armed sites below their budget, so
    /// identical runs make identical decisions.
    pub fn roll(&mut self, site: FaultSite) -> bool {
        let i = site.index();
        let Some(spec) = self.specs[i] else {
            return false;
        };
        if spec.max != 0 && self.injected[i] >= spec.max as u64 {
            return false;
        }
        self.rng.unit() < spec.probability
    }

    /// Record that an injection at `site` actually landed (a roll that
    /// found nothing to corrupt — e.g. no COPY in the block — is not
    /// counted).
    pub fn note_injected(&mut self, site: FaultSite) {
        self.injected[site.index()] += 1;
    }

    /// Per-site landed-injection counts, indexed by [`FaultSite::index`].
    pub fn injected(&self) -> [u64; NUM_SITES] {
        self.injected
    }

    /// Total landed injections across sites.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// The seeded stream, for corruption helpers that need random picks.
    pub fn rng(&mut self) -> &mut Rng64 {
        &mut self.rng
    }

    /// Serialise the mutable state (PRNG position and per-site landed
    /// counts). The plan itself is not included — restore rebuilds the
    /// injector from the machine configuration's plan and then resumes
    /// the stream, so a resumed run draws the exact same decisions an
    /// uninterrupted one would.
    pub fn snapshot_json(&self) -> Json {
        Json::obj([
            ("rng_state", Json::U64(self.rng.state())),
            (
                "injected",
                Json::Arr(self.injected.iter().map(|&n| Json::U64(n)).collect()),
            ),
        ])
    }

    /// Resume the mutable state from [`FaultInjector::snapshot_json`]
    /// output; `None` on structural mismatch.
    pub fn restore_snapshot(&mut self, j: &Json) -> Option<()> {
        let injected = j.get("injected")?.as_arr()?;
        if injected.len() != NUM_SITES {
            return None;
        }
        let mut counts = [0u64; NUM_SITES];
        for (slot, v) in counts.iter_mut().zip(injected) {
            *slot = v.as_u64()?;
        }
        self.rng = Rng64::from_state(j.get("rng_state")?.as_u64()?);
        self.injected = counts;
        Some(())
    }
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

/// Resilience accounting for one run: how many faults were injected,
/// how many were detected, and what recovery cost. Lives inside
/// `RunStats` (hence `Copy`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Landed injections per site, indexed by [`FaultSite::index`].
    pub injected: [u64; NUM_SITES],
    /// Corruption detections (lockstep-oracle divergence, integrity
    /// mismatch at fetch, or test-sync failure) that entered recovery.
    pub detected: u64,
    /// Detections that ended in a consistent machine and a continued
    /// run.
    pub recovered: u64,
    /// Checkpoint rollback + Primary Processor replays performed.
    pub replays: u64,
    /// Sequential instructions re-executed during replays.
    pub replayed_instrs: u64,
    /// Cycles charged to replays (also included in `overhead_cycles`).
    pub replay_cycles: u64,
    /// Recoveries where replay could not reconstruct a consistent state
    /// and the architectural state was scrubbed from the test machine
    /// (models refill from a clean storage level).
    pub scrubs: u64,
    /// VLIW Cache lines quarantined after a detection.
    pub quarantined: u64,
    /// Scheduler block installs rejected because the tag was still in
    /// quarantine cooldown.
    pub quarantine_rejects: u64,
}

impl FaultStats {
    /// Total landed injections across sites.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Parse back from the [`ToJson`] form (the derived `injected_total`
    /// member is ignored).
    pub fn from_json(j: &Json) -> Option<Self> {
        let per_site = j.get("injected")?;
        let mut injected = [0u64; NUM_SITES];
        for s in FaultSite::ALL {
            injected[s.index()] = per_site.get(s.label())?.as_u64()?;
        }
        Some(FaultStats {
            injected,
            detected: j.get("detected")?.as_u64()?,
            recovered: j.get("recovered")?.as_u64()?,
            replays: j.get("replays")?.as_u64()?,
            replayed_instrs: j.get("replayed_instrs")?.as_u64()?,
            replay_cycles: j.get("replay_cycles")?.as_u64()?,
            scrubs: j.get("scrubs")?.as_u64()?,
            quarantined: j.get("quarantined")?.as_u64()?,
            quarantine_rejects: j.get("quarantine_rejects")?.as_u64()?,
        })
    }
}

impl ToJson for FaultStats {
    fn to_json(&self) -> Json {
        let injected = Json::Obj(
            FaultSite::ALL
                .iter()
                .map(|s| (s.label().to_string(), Json::U64(self.injected[s.index()])))
                .collect(),
        );
        Json::obj([
            ("injected", injected),
            ("injected_total", Json::U64(self.total_injected())),
            ("detected", Json::U64(self.detected)),
            ("recovered", Json::U64(self.recovered)),
            ("replays", Json::U64(self.replays)),
            ("replayed_instrs", Json::U64(self.replayed_instrs)),
            ("replay_cycles", Json::U64(self.replay_cycles)),
            ("scrubs", Json::U64(self.scrubs)),
            ("quarantined", Json::U64(self.quarantined)),
            ("quarantine_rejects", Json::U64(self.quarantine_rejects)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_reproducible_and_varied() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "no collisions in 16 draws");
        let mut c = Rng64::new(43);
        assert_ne!(c.next_u64(), xs[0]);
    }

    #[test]
    fn unit_stays_in_range() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            let v = r.unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn site_labels_round_trip() {
        for s in FaultSite::ALL {
            assert_eq!(FaultSite::parse(s.label()), Some(s));
        }
        assert_eq!(FaultSite::parse("definitely-not-a-site"), None);
        let mut idx: Vec<usize> = FaultSite::ALL.iter().map(|s| s.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..NUM_SITES).collect::<Vec<_>>());
    }

    #[test]
    fn injector_respects_arming_and_budget() {
        let plan = FaultPlan::single(FaultSite::StaleNba, 1.0, 2, 9);
        let mut inj = FaultInjector::new(&plan);
        assert!(!inj.armed(FaultSite::CacheBitFlip));
        assert!(!inj.roll(FaultSite::CacheBitFlip), "unarmed never fires");
        assert!(inj.roll(FaultSite::StaleNba));
        inj.note_injected(FaultSite::StaleNba);
        assert!(inj.roll(FaultSite::StaleNba));
        inj.note_injected(FaultSite::StaleNba);
        assert!(!inj.roll(FaultSite::StaleNba), "budget of 2 exhausted");
        assert_eq!(inj.total_injected(), 2);
    }

    #[test]
    fn injector_probability_zero_never_fires() {
        let plan = FaultPlan::all_sites(0.0, 0, 1);
        let mut inj = FaultInjector::new(&plan);
        for _ in 0..100 {
            for s in FaultSite::ALL {
                assert!(!inj.roll(s));
            }
        }
    }

    #[test]
    fn injector_streams_reproduce() {
        let plan = FaultPlan::all_sites(0.5, 0, 1234);
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for _ in 0..64 {
            for s in FaultSite::ALL {
                assert_eq!(a.roll(s), b.roll(s));
            }
        }
    }

    #[test]
    fn injector_snapshot_resumes_the_stream() {
        let plan = FaultPlan::all_sites(0.5, 0, 77);
        let mut a = FaultInjector::new(&plan);
        for _ in 0..33 {
            if a.roll(FaultSite::CacheBitFlip) {
                a.note_injected(FaultSite::CacheBitFlip);
            }
        }
        let snap = a.snapshot_json();
        let mut b = FaultInjector::new(&plan);
        b.restore_snapshot(&Json::parse(&snap.to_string()).unwrap())
            .expect("restore");
        assert_eq!(a.injected(), b.injected());
        for _ in 0..64 {
            for s in FaultSite::ALL {
                assert_eq!(a.roll(s), b.roll(s));
            }
        }
        assert!(b.restore_snapshot(&Json::U64(1)).is_none());
    }

    #[test]
    fn fault_stats_json_round_trip() {
        let mut st = FaultStats::default();
        st.injected[FaultSite::CacheBitFlip.index()] = 4;
        st.detected = 3;
        st.recovered = 3;
        st.replays = 2;
        st.replayed_instrs = 120;
        st.replay_cycles = 260;
        st.scrubs = 1;
        st.quarantined = 2;
        st.quarantine_rejects = 5;
        let back = FaultStats::from_json(&Json::parse(&st.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(st, back);
    }

    #[test]
    fn stats_json_has_per_site_keys() {
        let mut st = FaultStats::default();
        st.injected[FaultSite::StaleNba.index()] = 3;
        st.detected = 2;
        st.recovered = 2;
        let j = st.to_json();
        assert_eq!(
            j.get("injected")
                .and_then(|i| i.get("stale-nba"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(j.get("injected_total").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("detected").and_then(Json::as_u64), Some(2));
    }
}
