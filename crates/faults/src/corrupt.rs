//! Class-preserving block corruption.
//!
//! Every helper mutates a sealed [`Block`] the way a hardware fault in
//! the VLIW Cache SRAM or in the Scheduler Unit's datapath would: the
//! *value* of an operand field, a next-block address, a branch tag or a
//! COPY companion rots, but the operation's class (opcode, destination
//! list, functional unit) stays intact. That restriction is what makes
//! the faults *survivable*: the VLIW Engine can always execute a
//! corrupted block to its boundary, where the lockstep oracle or the
//! integrity checksum catches the damage — the fault model stresses the
//! machine's recovery mechanisms, not the simulator's slot plumbing.
//!
//! All helpers draw picks from the caller's seeded [`Rng64`] and return
//! whether a mutation actually landed (a block with no eligible field is
//! left untouched).

use crate::Rng64;
use dtsvliw_isa::{Instr, Src2};
use dtsvliw_sched::{Block, SlotOp};

/// Operand fields eligible for a bit-flip, located by `(li, slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlipKind {
    /// ALU immediate, bits 0..12 (sign bit untouched so the value stays
    /// a valid 13-bit immediate).
    AluImm,
    /// ALU first source register, bits 0..5.
    AluRs1,
    /// `sethi` 22-bit immediate (only when `rd != 0`; corrupting a `nop`
    /// is architecturally invisible).
    SethiImm,
    /// Load/store immediate, bits 2..12 — flipping a multiple of 4
    /// preserves the access's alignment class.
    MemImm,
    /// FP second source register, bits 0..5.
    FpopRs2,
}

/// Flip one bit of one operand field of one scheduled instruction
/// (models a single-event upset in the VLIW Cache SRAM). Returns `false`
/// when the block holds no eligible operand.
pub fn flip_operand_bit(b: &mut Block, rng: &mut Rng64) -> bool {
    let mut candidates: Vec<(usize, usize, FlipKind)> = Vec::new();
    for (li, row) in b.lis.iter().enumerate() {
        for (slot, op) in row.slots.iter().enumerate() {
            let Some(SlotOp::Instr(s)) = op else { continue };
            match s.d.instr {
                Instr::Alu { rs1, src2, .. } => {
                    if matches!(src2, Src2::Imm(_)) {
                        candidates.push((li, slot, FlipKind::AluImm));
                    }
                    if rs1 < 32 {
                        candidates.push((li, slot, FlipKind::AluRs1));
                    }
                }
                Instr::Sethi { rd, .. } if rd != 0 => {
                    candidates.push((li, slot, FlipKind::SethiImm));
                }
                Instr::Mem { src2, .. } => {
                    if matches!(src2, Src2::Imm(_)) {
                        candidates.push((li, slot, FlipKind::MemImm));
                    }
                }
                Instr::Fpop { rs2, .. } if rs2 < 32 => {
                    candidates.push((li, slot, FlipKind::FpopRs2));
                }
                _ => {}
            }
        }
    }
    let Some(&(li, slot, kind)) = pick(&candidates, rng) else {
        return false;
    };
    let Some(SlotOp::Instr(s)) = &mut b.lis[li].slots[slot] else {
        unreachable!("candidate slot vanished");
    };
    match (&mut s.d.instr, kind) {
        (
            Instr::Alu {
                src2: Src2::Imm(v), ..
            },
            FlipKind::AluImm,
        ) => {
            *v ^= 1 << rng.below(12);
        }
        (Instr::Alu { rs1, .. }, FlipKind::AluRs1) => {
            *rs1 ^= 1 << rng.below(5);
        }
        (Instr::Sethi { imm22, .. }, FlipKind::SethiImm) => {
            *imm22 ^= 1 << rng.below(22);
        }
        (
            Instr::Mem {
                src2: Src2::Imm(v), ..
            },
            FlipKind::MemImm,
        ) => {
            *v ^= 1 << (2 + rng.below(10));
        }
        (Instr::Fpop { rs2, .. }, FlipKind::FpopRs2) => {
            *rs2 ^= 1 << rng.below(5);
        }
        _ => unreachable!("candidate kind does not match instruction"),
    }
    true
}

/// Corrupt the block's next-block-address store by flipping one word-
/// aligned address bit (bits 2..10): the chain continues at a wrong but
/// well-formed address, which the lockstep oracle catches on the very
/// next PC comparison.
pub fn corrupt_nba(b: &mut Block, rng: &mut Rng64) -> bool {
    b.nba_addr ^= 1 << (2 + rng.below(8));
    true
}

/// Zero the branch tag of one operation scheduled under a branch: the
/// operation now commits even when its guarding branch leaves the
/// recorded direction (§3.8 inverted). Harmless until a guard actually
/// mispredicts, which is exactly the paper's failure scenario.
pub fn invert_branch_tag(b: &mut Block, rng: &mut Rng64) -> bool {
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for (li, row) in b.lis.iter().enumerate() {
        for (slot, op) in row.slots.iter().enumerate() {
            if op.as_ref().is_some_and(|o| o.tag() > 0) {
                candidates.push((li, slot));
            }
        }
    }
    let Some(&(li, slot)) = pick(&candidates, rng) else {
        return false;
    };
    match b.lis[li].slots[slot].as_mut() {
        Some(SlotOp::Instr(s)) => s.tag = 0,
        Some(SlotOp::Copy(c)) => c.tag = 0,
        None => unreachable!("candidate slot vanished"),
    }
    true
}

/// Drop one COPY companion from the block: the renamed value never
/// commits to its original location (§3.2 split losing its second half).
pub fn drop_copy(b: &mut Block, rng: &mut Rng64) -> bool {
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for (li, row) in b.lis.iter().enumerate() {
        for (slot, op) in row.slots.iter().enumerate() {
            if matches!(op, Some(SlotOp::Copy(_))) {
                candidates.push((li, slot));
            }
        }
    }
    let Some(&(li, slot)) = pick(&candidates, rng) else {
        return false;
    };
    b.lis[li].slots[slot] = None;
    true
}

/// Uniform pick; draws from the stream only when non-empty so a barren
/// block does not perturb later decisions' reproducibility.
fn pick<'a, T>(candidates: &'a [T], rng: &mut Rng64) -> Option<&'a T> {
    if candidates.is_empty() {
        None
    } else {
        Some(&candidates[rng.below(candidates.len() as u64) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsvliw_isa::{AluOp, DynInstr, ResList, Resource};
    use dtsvliw_sched::{CopyInstr, LongInstr, RenameCounts, ScheduledInstr};

    fn dyn_instr(instr: Instr) -> DynInstr {
        DynInstr {
            seq: 0,
            pc: 0x1000,
            instr,
            cwp_before: 0,
            cwp_after: 0,
            eff_addr: None,
            taken: None,
            target: None,
            delay_is_nop: false,
        }
    }

    fn sched(instr: Instr, tag: u8) -> ScheduledInstr {
        ScheduledInstr {
            d: dyn_instr(instr),
            reads: ResList::default(),
            writes: ResList::default(),
            tag,
            ls_order: None,
            cross: false,
            src_renames: Vec::new(),
        }
    }

    fn block(lis: Vec<LongInstr>) -> Block {
        Block {
            tag_addr: 0x1000,
            entry_cwp: 0,
            entry_resident: 1,
            window_sensitive: false,
            lis,
            nba_addr: 0x2000,
            renames: RenameCounts::default(),
            first_seq: 0,
            trace_len: 4,
        }
    }

    fn alu_imm(rd: u8, rs1: u8, imm: i32) -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            cc: false,
            rd,
            rs1,
            src2: Src2::Imm(imm),
        }
    }

    #[test]
    fn flip_changes_an_operand_and_nothing_else() {
        let mut li = LongInstr::empty(4);
        li.slots[0] = Some(SlotOp::Instr(sched(alu_imm(1, 2, 100), 0)));
        let mut b = block(vec![li]);
        let clean = b.clone();
        let mut rng = Rng64::new(5);
        assert!(flip_operand_bit(&mut b, &mut rng));
        assert_ne!(b, clean, "some operand bit flipped");
        assert_eq!(b.nba_addr, clean.nba_addr);
        assert_eq!(b.lis[0].len(), 1, "no slot appeared or vanished");
        let (Some(SlotOp::Instr(got)), Some(SlotOp::Instr(was))) =
            (&b.lis[0].slots[0], &clean.lis[0].slots[0])
        else {
            panic!("slot shape changed");
        };
        assert_eq!(got.writes, was.writes, "destinations are never corrupted");
        match got.d.instr {
            Instr::Alu { op, cc, rd, .. } => {
                assert_eq!((op, cc, rd), (AluOp::Add, false, 1), "class preserved");
            }
            other => panic!("opcode class changed: {other:?}"),
        }
    }

    #[test]
    fn flip_preserves_imm13_range() {
        for seed in 0..64 {
            let mut li = LongInstr::empty(1);
            li.slots[0] = Some(SlotOp::Instr(sched(alu_imm(1, 0, -4096), 0)));
            let mut b = block(vec![li]);
            let mut rng = Rng64::new(seed);
            assert!(flip_operand_bit(&mut b, &mut rng));
            if let Some(SlotOp::Instr(s)) = &b.lis[0].slots[0] {
                match s.d.instr {
                    Instr::Alu {
                        src2: Src2::Imm(v), ..
                    } => assert!((-4096..=4095).contains(&v), "imm {v} left imm13"),
                    Instr::Alu { rs1, .. } => assert!(rs1 < 32),
                    other => panic!("{other:?}"),
                }
            }
        }
    }

    #[test]
    fn flip_skips_barren_blocks() {
        // Only a nop (sethi to %g0): nothing eligible.
        let mut li = LongInstr::empty(2);
        li.slots[0] = Some(SlotOp::Instr(sched(Instr::NOP, 0)));
        let mut b = block(vec![li]);
        let clean = b.clone();
        let mut rng = Rng64::new(1);
        let before = rng;
        assert!(!flip_operand_bit(&mut b, &mut rng));
        assert_eq!(b, clean);
        assert_eq!(rng, before, "no stream draw on a barren block");
    }

    #[test]
    fn nba_corruption_keeps_word_alignment_and_differs() {
        for seed in 0..32 {
            let mut b = block(vec![LongInstr::empty(1)]);
            let mut rng = Rng64::new(seed);
            assert!(corrupt_nba(&mut b, &mut rng));
            assert_ne!(b.nba_addr, 0x2000);
            assert_eq!(b.nba_addr % 4, 0);
        }
    }

    #[test]
    fn tag_inversion_zeroes_a_guarded_op() {
        let mut li = LongInstr::empty(4);
        li.slots[0] = Some(SlotOp::Instr(sched(alu_imm(1, 2, 4), 0)));
        li.slots[1] = Some(SlotOp::Instr(sched(alu_imm(3, 4, 8), 2)));
        let mut b = block(vec![li]);
        let mut rng = Rng64::new(3);
        assert!(invert_branch_tag(&mut b, &mut rng));
        let Some(SlotOp::Instr(s)) = &b.lis[0].slots[1] else {
            panic!()
        };
        assert_eq!(s.tag, 0, "the only tagged op lost its guard");
        // A block with no tagged ops is untouched.
        let mut plain = block(vec![LongInstr::empty(1)]);
        assert!(!invert_branch_tag(&mut plain, &mut rng));
    }

    #[test]
    fn copy_drop_removes_exactly_one_copy() {
        let copy = CopyInstr {
            pairs: vec![(Resource::IntRen(0), Resource::Int(9))],
            tag: 0,
            ls_order: None,
            cross: false,
            orig_seq: 7,
        };
        let mut li = LongInstr::empty(4);
        li.slots[0] = Some(SlotOp::Instr(sched(alu_imm(1, 2, 4), 0)));
        li.slots[2] = Some(SlotOp::Copy(copy));
        let mut b = block(vec![li]);
        let mut rng = Rng64::new(11);
        assert!(drop_copy(&mut b, &mut rng));
        assert!(b.lis[0].slots[2].is_none(), "the COPY slot emptied");
        assert!(b.lis[0].slots[0].is_some(), "the real instr survives");
        assert!(!drop_copy(&mut b, &mut rng), "no COPY left to drop");
    }

    #[test]
    fn corruptions_are_seed_reproducible() {
        let build = || {
            let mut li = LongInstr::empty(4);
            li.slots[0] = Some(SlotOp::Instr(sched(alu_imm(1, 2, 100), 0)));
            li.slots[1] = Some(SlotOp::Instr(sched(Instr::Sethi { rd: 5, imm22: 7 }, 1)));
            block(vec![li])
        };
        let (mut a, mut b) = (build(), build());
        let mut ra = Rng64::new(99);
        let mut rb = Rng64::new(99);
        assert!(flip_operand_bit(&mut a, &mut ra));
        assert!(flip_operand_bit(&mut b, &mut rb));
        assert_eq!(a, b, "same seed, same corruption");
    }
}
