//! Dependency-free JSON: an ordered value model, a writer (compact and
//! pretty) and a small recursive-descent parser.
//!
//! The simulator serialises run statistics, experiment results and trace
//! events to JSON, and the build must work with no network access, so
//! this crate replaces `serde`/`serde_json` for the workspace. The
//! surface is deliberately small: values are built explicitly through
//! [`Json`] and the [`ToJson`] trait, and the parser exists for
//! round-trip tests and for tools that read the dumps back.
//!
//! ```
//! use dtsvliw_json::{Json, ToJson};
//!
//! let v = Json::obj([("cycles", 42u64.to_json()), ("ipc", 1.5.to_json())]);
//! let text = v.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("cycles").unwrap().as_u64(), Some(42));
//! ```

use std::fmt::{self, Write as _};

/// A JSON value. Object keys keep insertion order so dumps are stable
/// and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// A non-negative integer (u64 keeps cycle counters exact; f64
    /// would silently round above 2^53).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number. Non-finite values render as `null`
    /// (JSON has no NaN/Inf).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Member lookup on an object (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64 (integers only; floats are not coerced).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an i64 (integers only; floats are not coerced).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::U64(n) => i64::try_from(*n).ok(),
            Json::I64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an f64 (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace).
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, None, 0);
        s
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, Some(2), 0);
        s
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // Keep integral floats distinguishable from ints so
                    // parsing round-trips the variant.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    v.render(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    escape_into(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our
                            // dumps; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| ParseError {
            at: start,
            msg: "bad number",
        })
    }
}

/// Conversion into a [`Json`] value. Implement this for every type that
/// appears in a dump; there is no derive — impls are explicit and live
/// next to the type.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::U64(*self)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl ToJson for u16 {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl ToJson for u8 {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        if *self >= 0 {
            Json::U64(*self as u64)
        } else {
            Json::I64(*self)
        }
    }
}

impl ToJson for i32 {
    fn to_json(&self) -> Json {
        (*self as i64).to_json()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let v = Json::obj([
            ("null", Json::Null),
            ("bool", Json::Bool(true)),
            ("big", Json::U64(u64::MAX)),
            ("neg", Json::I64(-42)),
            ("float", Json::F64(1.25)),
            ("text", Json::Str("a\"b\\c\n\t\u{1}".into())),
            ("arr", Json::arr([Json::U64(1), Json::U64(2)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn u64_precision_is_exact() {
        let n = (1u64 << 53) + 1; // not representable as f64
        let text = Json::U64(n).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn typed_accessors() {
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::U64(1).as_bool(), None);
        assert_eq!(Json::I64(-3).as_i64(), Some(-3));
        assert_eq!(Json::U64(7).as_i64(), Some(7));
        assert_eq!(Json::U64(u64::MAX).as_i64(), None, "out of i64 range");
        assert_eq!(Json::F64(1.0).as_i64(), None, "floats are not coerced");
        assert_eq!(Json::I64(-1).as_u64(), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            "\"abc",
            "{\"a\" 1}",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integral_float_keeps_decimal_point() {
        let text = Json::F64(2.0).to_string();
        assert_eq!(text, "2.0");
        assert!(matches!(Json::parse(&text).unwrap(), Json::F64(_)));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
        let v = Json::Str("héllo →".into());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
