//! Both machines of the Figure 9 comparison run the same workload
//! correctly (each in its own test mode) and land in the same
//! performance band — the paper found them within ~9% on average.

use dtsvliw_dif::{dtsvliw_comparison_machine, DifMachine};
use dtsvliw_workloads::{by_name, Scale};

#[test]
fn dif_and_dtsvliw_agree_architecturally_and_land_close() {
    let w = by_name("xlisp", Scale::Test).unwrap();
    let img = w.image();

    let mut dtsvliw = dtsvliw_comparison_machine(&img);
    let out1 = dtsvliw
        .run(50_000_000)
        .unwrap_or_else(|e| panic!("dtsvliw: {e}"));
    let mut dif = DifMachine::new(&img);
    let out2 = dif.run(50_000_000).unwrap_or_else(|e| panic!("dif: {e}"));

    assert_eq!(out1.exit_code, Some(0));
    assert_eq!(out2.exit_code, Some(0));
    assert_eq!(out1.instructions, out2.instructions, "same sequential work");

    let (a, b) = (dtsvliw.stats().ipc(), dif.stats().ipc());
    println!("dtsvliw ipc {a:.3}  dif ipc {b:.3}");
    let ratio = a / b;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "the two machines implement the same concept and must land close: {ratio:.2}"
    );
}

#[test]
fn greedy_schedules_verify_on_all_workloads() {
    // The greedy (settle-to-fixpoint) scheduler must preserve
    // architectural behaviour on the whole suite, under test mode.
    for w in dtsvliw_workloads::all(Scale::Test) {
        let mut m = DifMachine::new(&w.image());
        let out = m
            .run(50_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(out.exit_code, w.expected_exit, "{}", w.name);
    }
}
