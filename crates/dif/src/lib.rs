//! The DIF machine of Nair & Hopkins ("Exploiting Instruction Level
//! Parallelism in Processors by Caching Scheduled Groups", ISCA 1997) —
//! the baseline of the paper's §4.5 / Figure 9 comparison.
//!
//! # What DIF is, and how this model maps onto the shared substrate
//!
//! DIF also pairs a simple primary engine with a VLIW engine fed from a
//! cache of scheduled groups; the differences the paper enumerates
//! (§3.12) and how each is modelled here:
//!
//! * **Greedy scheduling** over a hardware resource-ready table — each
//!   instruction is placed at the earliest long instruction whose inputs
//!   are ready and which has a free unit, immediately on arrival.
//!   Modelled by [`dtsvliw_core::ScheduleMode::GreedyDif`]: the FCFS
//!   scheduling list is run to its fixpoint after every insertion. A
//!   candidate's FCFS fixpoint *is* its greedy position — both are
//!   blocked by exactly the same flow/resource constraints — so the
//!   resulting blocks are the greedy schedule without re-implementing
//!   the table.
//! * **Register instances** (4 copies of each architectural register)
//!   plus per-exit-point **exit maps** instead of COPY instructions.
//!   Renaming is expressed with the substrate's renaming registers and
//!   COPYs. This charges DIF slot space for COPYs where real DIF spends
//!   DIF-cache bytes on exit maps instead (the paper: 19 bytes per exit
//!   point, 463 KB total against the DTSVLIW's 216 KB); the instance
//!   *count* is not capped because the paper's own DIF run needed at
//!   most 4 instances while blocks here stay far below that.
//! * **Block-granularity cache transfers** ("the unit of communication
//!   between the DIF cache and its VLIW Engine is an entire block"): a
//!   2-cycle block-entry penalty instead of the DTSVLIW's 1-cycle nba
//!   chaining.
//! * The Figure 9 parameters — 2-way 512×2-block DIF cache, 4-Kbyte
//!   I/D caches with 2-cycle miss, 4 homogeneous units + 2 branch
//!   units, blocks of 6 long instructions of 6 instructions — are
//!   [`dtsvliw_core::MachineConfig::dif_machine`], mirrored by the
//!   DTSVLIW-side `dif_comparison` configuration.
//!
//! Because both machines here run the same ISA, the same compiler and
//! the same inputs, this is a *more* controlled comparison than the
//! paper's own (their DIF numbers came from a PowerPC trace simulator
//! with a different compiler — the paper says to read its Figure 9
//! "with caution").

use dtsvliw_asm::Image;
use dtsvliw_core::{Machine, MachineConfig, MachineError, RunOutcome, RunStats};

/// A DIF machine: the shared substrate under the DIF configuration.
pub struct DifMachine {
    inner: Machine,
}

impl DifMachine {
    /// Build a DIF machine for `image` with the Figure 9 parameters.
    pub fn new(image: &Image) -> Self {
        DifMachine {
            inner: Machine::new(MachineConfig::dif_machine(), image),
        }
    }

    /// Build with a custom configuration (forces greedy scheduling).
    pub fn with_config(mut cfg: MachineConfig, image: &Image) -> Self {
        cfg.schedule = dtsvliw_core::ScheduleMode::GreedyDif;
        DifMachine {
            inner: Machine::new(cfg, image),
        }
    }

    /// Run up to `max_instructions` sequential instructions.
    pub fn run(&mut self, max_instructions: u64) -> Result<RunOutcome, MachineError> {
        self.inner.run(max_instructions)
    }

    /// Statistics so far.
    pub fn stats(&self) -> RunStats {
        self.inner.stats()
    }
}

/// The DTSVLIW machine configured for the same Figure 9 comparison
/// (6×6 blocks, 4+2 units, 4-Kbyte caches, 216-Kbyte VLIW Cache).
pub fn dtsvliw_comparison_machine(image: &Image) -> Machine {
    Machine::new(MachineConfig::dif_comparison(), image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsvliw_core::ScheduleMode;

    #[test]
    fn dif_machine_uses_greedy_and_block_fetch() {
        let c = MachineConfig::dif_machine();
        assert_eq!(c.schedule, ScheduleMode::GreedyDif);
        assert_eq!(c.next_li_penalty, 2);
        assert_eq!(c.vliw_cache.lines(), 1024);
        assert_eq!(c.sched.width, 6);
        assert_eq!(c.sched.height, 6);
    }
}
