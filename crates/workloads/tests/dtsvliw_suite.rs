//! Every workload runs on the full DTSVLIW machine in test mode: each
//! instruction commit is co-simulated against the sequential reference,
//! each workload's own self-checks must also pass, and the machine must
//! spend a meaningful share of cycles in VLIW mode.

use dtsvliw_core::{Machine, MachineConfig};
use dtsvliw_workloads::{all, Scale};

#[test]
fn all_workloads_verify_on_the_dtsvliw_machine() {
    for w in all(Scale::Test) {
        let img = w.image();
        let mut m = Machine::new(MachineConfig::ideal(8, 8), &img);
        let out = m
            .run(50_000_000)
            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        assert_eq!(out.exit_code, w.expected_exit, "{} exit", w.name);
        let st = m.stats();
        assert!(
            st.vliw_cycle_share() > 0.3,
            "{}: only {:.1}% of cycles in VLIW mode",
            w.name,
            100.0 * st.vliw_cycle_share()
        );
        assert!(st.ipc() > 0.5, "{}: ipc {:.2}", w.name, st.ipc());
        println!(
            "{:10} ipc {:.2}  vliw {:>5.1}%  instrs {:>9}  cycles {:>9}",
            w.name,
            st.ipc(),
            100.0 * st.vliw_cycle_share(),
            st.instructions,
            st.cycles
        );
    }
}

#[test]
fn feasible_machine_runs_a_workload() {
    let w = dtsvliw_workloads::by_name("xlisp", Scale::Test).unwrap();
    let mut m = Machine::new(MachineConfig::feasible_paper(), &w.image());
    let out = m.run(10_000_000).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(out.exit_code, Some(0));
}
