//! Every workload compiles, runs to completion on the reference machine
//! with its self-checks green, and produces a non-trivial dynamic
//! instruction count.

use dtsvliw_primary::{RefMachine, RunOutcome};
use dtsvliw_workloads::{all, by_name, Scale};

#[test]
fn all_eight_workloads_self_check_on_the_reference_machine() {
    let suite = all(Scale::Test);
    assert_eq!(suite.len(), 8);
    let names: Vec<&str> = suite.iter().map(|w| w.name).collect();
    assert_eq!(
        names,
        ["compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "vortex", "xlisp"],
        "paper Table 2 order"
    );
    for w in &suite {
        let img = w.image();
        let mut m = RefMachine::new(&img);
        match m.run(200_000_000) {
            Ok(RunOutcome::Halted { code, retired }) => {
                assert_eq!(Some(code), w.expected_exit, "{} exit code", w.name);
                assert!(
                    retired > 20_000,
                    "{} too small at Scale::Test: {retired} instructions",
                    w.name
                );
                println!("{:10} {:>10} instructions", w.name, retired);
            }
            Ok(RunOutcome::OutOfFuel) => panic!("{} did not halt", w.name),
            Err(e) => panic!("{} failed: {e}", w.name),
        }
    }
}

#[test]
fn scales_grow_instruction_counts() {
    let small = by_name("xlisp", Scale::Small).unwrap();
    let test = by_name("xlisp", Scale::Test).unwrap();
    let count = |w: &dtsvliw_workloads::Workload| {
        let mut m = RefMachine::new(&w.image());
        match m.run(500_000_000).unwrap() {
            RunOutcome::Halted { retired, .. } => retired,
            RunOutcome::OutOfFuel => panic!("no halt"),
        }
    };
    assert!(count(&small) > 4 * count(&test));
}

#[test]
fn deterministic_sources() {
    let a = by_name("perl", Scale::Small).unwrap().source;
    let b = by_name("perl", Scale::Small).unwrap().source;
    assert_eq!(a, b);
}
