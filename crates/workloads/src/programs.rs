//! The eight benchmark sources. Each takes the scale factor `f` and
//! returns minicc source text. All use the same LCG so inputs are
//! deterministic and reproducible from the seed.

fn lcg() -> &'static str {
    "
int seed = 20260706;
fn rnd() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}
"
}

/// compress: LZW round trip (compress95).
pub fn compress(f: u32) -> String {
    format!(
        "{lcg}
int input[1024];
int codes[2048];
int decoded[1200];
int dict_prefix[4096];
int dict_char[4096];
int dict_next[4096];
int hash_head[1024];
int stackbuf[4096];
int outp;

fn gen_input(n) {{
    reg i = 0;
    while (i < n) {{
        var r = rnd();
        if (r % 4 == 0) {{
            input[i] = r & 255;         // occasional noise byte
        }} else {{
            input[i] = (r & 7) + 97;    // mostly 'a'..'h': compressible
        }}
        i = i + 1;
    }}
    return 0;
}}

// LZW encode: literals 0..255, dictionary codes 256..4095.
fn encode(n) {{
    for (reg h = 0; h < 1024; h = h + 1) {{ hash_head[h] = 0 - 1; }}
    reg ncodes = 0;
    reg next_code = 256;
    var w = input[0];
    reg i = 1;
    while (i < n) {{
        var c = input[i];
        var hsh = ((w << 5) - w + c) & 1023;
        var e = hash_head[hsh];
        var found = 0 - 1;
        while (e >= 0) {{
            if (dict_prefix[e] == w && dict_char[e] == c) {{ found = e; break; }}
            e = dict_next[e];
        }}
        if (found >= 0) {{
            w = found + 256;
        }} else {{
            codes[ncodes] = w;
            ncodes = ncodes + 1;
            if (next_code < 4096) {{
                var idx = next_code - 256;
                dict_prefix[idx] = w;
                dict_char[idx] = c;
                dict_next[idx] = hash_head[hsh];
                hash_head[hsh] = idx;
                next_code = next_code + 1;
            }}
            w = c;
        }}
        i = i + 1;
    }}
    codes[ncodes] = w;
    return ncodes + 1;
}}

fn first_char(code) {{
    while (code >= 256) {{ code = dict_prefix[code - 256]; }}
    return code;
}}

fn emit(code) {{
    reg sp = 0;
    while (code >= 256) {{
        stackbuf[sp] = dict_char[code - 256];
        sp = sp + 1;
        code = dict_prefix[code - 256];
    }}
    var fc = code;
    decoded[outp] = code;
    outp = outp + 1;
    while (sp > 0) {{
        sp = sp - 1;
        decoded[outp] = stackbuf[sp];
        outp = outp + 1;
    }}
    return fc;
}}

// LZW decode, rebuilding the dictionary the way the encoder built it.
fn decode(ncodes) {{
    outp = 0;
    reg next_code = 256;
    var prev = codes[0];
    emit(prev);
    reg k = 1;
    while (k < ncodes) {{
        var code = codes[k];
        var fc = 0;
        if (code < next_code) {{
            fc = first_char(code);
        }} else {{
            assert(code == next_code, 11);
            fc = first_char(prev);
        }}
        if (next_code < 4096) {{
            dict_prefix[next_code - 256] = prev;
            dict_char[next_code - 256] = fc;
            next_code = next_code + 1;
        }}
        emit(code);
        prev = code;
        k = k + 1;
    }}
    return outp;
}}

fn main() {{
    reg iters = {f};
    reg check = 0;
    while (iters > 0) {{
        gen_input(1024);
        var nc = encode(1024);
        assert(nc < 1024, 12);          // compressible input must shrink
        var n = decode(nc);
        assert(n == 1024, 13);
        for (reg i = 0; i < 1024; i = i + 1) {{
            assert(decoded[i] == input[i], 14);
        }}
        check = check + nc;
        iters = iters - 1;
    }}
    halt(0);
    return 0;
}}
",
        lcg = lcg()
    )
}

/// gcc: expression trees built, evaluated recursively, constant-folded.
pub fn gcc(f: u32) -> String {
    format!(
        "{lcg}
int op[1024];
int lhs[1024];
int rhs[1024];
int val[1024];
int nnodes;

fn build(depth) {{
    var n = nnodes;
    nnodes = nnodes + 1;
    assert(n < 1024, 21);
    var r = rnd();
    if (depth == 0 || (r & 3) == 0) {{
        op[n] = 0;
        val[n] = rnd() & 1023;
        return n;
    }}
    op[n] = (r % 5) + 1;
    lhs[n] = build(depth - 1);
    rhs[n] = build(depth - 1);
    return n;
}}

fn apply(o, a, b) {{
    if (o == 1) {{ return a + b; }}
    if (o == 2) {{ return a - b; }}
    if (o == 3) {{ return a * b; }}
    if (o == 4) {{ return a & b; }}
    return a ^ b;
}}

fn eval(n) {{
    var o = op[n];
    if (o == 0) {{ return val[n]; }}
    var a = eval(lhs[n]);
    var b = eval(rhs[n]);
    return apply(o, a, b);
}}

// Bottom-up constant folding: after folding every node is a literal.
fn fold(n) {{
    if (op[n] != 0) {{
        var a = fold(lhs[n]);
        var b = fold(rhs[n]);
        val[n] = apply(op[n], a, b);
        op[n] = 0;
    }}
    return val[n];
}}

fn main() {{
    reg trees = {count};
    while (trees > 0) {{
        nnodes = 0;
        var root = build(7);
        var direct = eval(root);
        var folded = fold(root);
        assert(direct == folded, 22);
        assert(op[root] == 0, 23);
        trees = trees - 1;
    }}
    halt(0);
    return 0;
}}
",
        lcg = lcg(),
        count = 12 * f
    )
}

/// go: influence propagation on a 19x19 board with a mirror self-check.
pub fn go(f: u32) -> String {
    format!(
        "{lcg}
int board[361];
int mirror_board[361];
int infl[361];
int infl2[361];

fn clear_boards() {{
    for (reg p = 0; p < 361; p = p + 1) {{ board[p] = 0; mirror_board[p] = 0; }}
    return 0;
}}

fn place_stones(count) {{
    reg placed = 0;
    while (placed < count) {{
        var p = rnd() % 361;
        if (board[p] == 0) {{
            var color = 1 + (rnd() & 1);
            board[p] = color;
            // mirrored position: x -> 18 - x
            var y = p / 19;
            var x = p - y * 19;
            mirror_board[y * 19 + (18 - x)] = color;
            placed = placed + 1;
        }}
    }}
    return 0;
}}

// Influence contribution of the stone (if any) at board[q], weighted by
// 8 >> dist. Returns signed weight.
fn stone_weight(from_mirror, q, dist) {{
    var s = 0;
    if (from_mirror) {{ s = mirror_board[q]; }} else {{ s = board[q]; }}
    if (s == 1) {{ return 8 >> dist; }}
    if (s == 2) {{ return 0 - (8 >> dist); }}
    return 0;
}}

// One row of the neighbourhood, width 1: the points (x-1..x+1, yrow),
// unrolled like a -O3 build would.
fn scan_row1(from_mirror, rowbase, x, dbase) {{
    reg acc = stone_weight(from_mirror, rowbase + x, dbase);
    if (x - 1 >= 0) {{ acc = acc + stone_weight(from_mirror, rowbase + x - 1, dbase + 1); }}
    if (x + 1 <= 18) {{ acc = acc + stone_weight(from_mirror, rowbase + x + 1, dbase + 1); }}
    return acc;
}}

// Width-2 row: x-2..x+2.
fn scan_row2(from_mirror, rowbase, x, dbase) {{
    reg acc = scan_row1(from_mirror, rowbase, x, dbase);
    if (x - 2 >= 0) {{ acc = acc + stone_weight(from_mirror, rowbase + x - 2, dbase + 2); }}
    if (x + 2 <= 18) {{ acc = acc + stone_weight(from_mirror, rowbase + x + 2, dbase + 2); }}
    return acc;
}}

fn influence(from_mirror) {{
    reg p = 0;
    for (reg y = 0; y < 19; y = y + 1) {{
        for (reg x = 0; x < 19; x = x + 1) {{
            var acc = scan_row2(from_mirror, y * 19, x, 0);
            if (y >= 1) {{ acc = acc + scan_row1(from_mirror, (y - 1) * 19, x, 1); }}
            if (y <= 17) {{ acc = acc + scan_row1(from_mirror, (y + 1) * 19, x, 1); }}
            if (y >= 2) {{ acc = acc + stone_weight(from_mirror, (y - 2) * 19 + x, 2); }}
            if (y <= 16) {{ acc = acc + stone_weight(from_mirror, (y + 2) * 19 + x, 2); }}
            if (from_mirror) {{ infl2[p] = acc; }} else {{ infl[p] = acc; }}
            p = p + 1;
        }}
    }}
    return 0;
}}

fn liberties() {{
    reg total = 0;
    reg p = 0;
    for (reg y = 0; y < 19; y = y + 1) {{
        for (reg x = 0; x < 19; x = x + 1) {{
            if (board[p] != 0) {{
                if (y > 0 && board[p - 19] == 0) {{ total = total + 1; }}
                if (y < 18 && board[p + 19] == 0) {{ total = total + 1; }}
                if (x > 0 && board[p - 1] == 0) {{ total = total + 1; }}
                if (x < 18 && board[p + 1] == 0) {{ total = total + 1; }}
            }}
            p = p + 1;
        }}
    }}
    return total;
}}

fn main() {{
    reg games = {f};
    reg check = 0;
    while (games > 0) {{
        clear_boards();
        place_stones(60);
        influence(0);
        influence(1);
        // Mirror symmetry: influence commutes with the reflection.
        reg p = 0;
        for (reg y = 0; y < 19; y = y + 1) {{
            for (reg x = 0; x < 19; x = x + 1) {{
                assert(infl[p] == infl2[y * 19 + (18 - x)], 31);
                p = p + 1;
            }}
        }}
        check = check + liberties();
        games = games - 1;
    }}
    assert(check > 0, 32);
    halt(0);
    return 0;
}}
",
        lcg = lcg()
    )
}

/// ijpeg: reversible 8-point butterfly (Hadamard) transform over an
/// image — fully unrolled straight-line kernel like real JPEG DCT code —
/// forward on rows+columns, again to invert, exact compare.
pub fn ijpeg(f: u32) -> String {
    format!(
        "{lcg}
int img[1024];
int orig[1024];
int energy;

// 8-point Hadamard, fully unrolled (jfdctint.c-style straight-line
// code). Loads the lane, runs 3 butterfly stages in registers, stores.
fn hadamard8(base, shift) {{
    var s1 = 1 << shift;
    var v0 = lw(base);
    var v1 = lw(base + s1);
    var v2 = lw(base + s1 * 2);
    var v3 = lw(base + s1 * 2 + s1);
    var v4 = lw(base + s1 * 4);
    var v5 = lw(base + s1 * 4 + s1);
    var v6 = lw(base + s1 * 4 + s1 * 2);
    var v7 = lw(base + s1 * 4 + s1 * 2 + s1);
    // stage 1: distance 1
    v0 = v0 + v1; v1 = v0 - v1 - v1;
    v2 = v2 + v3; v3 = v2 - v3 - v3;
    v4 = v4 + v5; v5 = v4 - v5 - v5;
    v6 = v6 + v7; v7 = v6 - v7 - v7;
    // stage 2: distance 2
    v0 = v0 + v2; v2 = v0 - v2 - v2;
    v1 = v1 + v3; v3 = v1 - v3 - v3;
    v4 = v4 + v6; v6 = v4 - v6 - v6;
    v5 = v5 + v7; v7 = v5 - v7 - v7;
    // stage 3: distance 4
    v0 = v0 + v4; v4 = v0 - v4 - v4;
    v1 = v1 + v5; v5 = v1 - v5 - v5;
    v2 = v2 + v6; v6 = v2 - v6 - v6;
    v3 = v3 + v7; v7 = v3 - v7 - v7;
    sw(base, v0);
    sw(base + s1, v1);
    sw(base + s1 * 2, v2);
    sw(base + s1 * 2 + s1, v3);
    sw(base + s1 * 4, v4);
    sw(base + s1 * 4 + s1, v5);
    sw(base + s1 * 4 + s1 * 2, v6);
    sw(base + s1 * 4 + s1 * 2 + s1, v7);
    return 0;
}}

// Transform every 8x8 block of the 32x32 image: all rows then all
// columns. Applying it twice scales every pixel by 64.
fn transform() {{
    var base = addr(img);
    for (reg by = 0; by < 32; by = by + 8) {{
        for (reg bx = 0; bx < 32; bx = bx + 8) {{
            for (reg r = 0; r < 8; r = r + 1) {{
                hadamard8(base + ((by + r) * 32 + bx) * 4, 2);
            }}
            for (reg c = 0; c < 8; c = c + 1) {{
                hadamard8(base + (by * 32 + bx + c) * 4, 7);
            }}
        }}
    }}
    return 0;
}}

fn main() {{
    reg frames = {frames};
    // One random base image; later frames derive from it cheaply so the
    // kernel, not the generator, dominates (the generator's software
    // multiply is a serial mulscc chain).
    for (reg i = 0; i < 1024; i = i + 1) {{ orig[i] = rnd() & 255; }}
    reg frame = 0;
    while (frames > 0) {{
        for (reg i = 0; i < 1024; i = i + 1) {{
            var v = (orig[i] + frame) & 255;
            img[i] = v;
            orig[i] = v;
        }}
        transform();
        // Spectral statistic on the coefficients.
        reg e = 0;
        for (reg i = 0; i < 1024; i = i + 1) {{
            var c = img[i];
            if (c < 0) {{ c = 0 - c; }}
            e = e + (c >> 4);
        }}
        energy = energy + e;
        transform();   // Hadamard is its own inverse up to the 64x scale
        for (reg i = 0; i < 1024; i = i + 1) {{
            var w = img[i] >> 6;
            assert(w * 64 == img[i], 41);
            assert(w == orig[i], 42);
            img[i] = w;
        }}
        frame = frame + 13;
        frames = frames - 1;
    }}
    assert(energy > 0, 43);
    halt(0);
    return 0;
}}
",
        lcg = lcg(),
        frames = 2 * f
    )
}

/// m88ksim: an interpreter for a tiny 16-bit-encoded register machine,
/// cross-checked against direct computation.
pub fn m88ksim(f: u32) -> String {
    format!(
        "{lcg}
int regs[8];
int prog[64];
int nprog;

// Encoding: op in bits 12.., rd bits 9..11, rs bits 6..8, imm bits 0..5.
// ops: 0 halt, 1 li, 2 add, 3 sub, 4 jnz (target = imm), 5 mov, 6 addi.
fn emit1(o, rd, rs, imm) {{
    prog[nprog] = (o << 12) + (rd << 9) + (rs << 6) + imm;
    nprog = nprog + 1;
    return 0;
}}

fn interp(maxsteps) {{
    reg pc = 0;
    reg steps = 0;
    while (steps < maxsteps) {{
        var ins = prog[pc];
        var o = ins >> 12;
        var rd = (ins >> 9) & 7;
        var rs = (ins >> 6) & 7;
        var imm = ins & 63;
        pc = pc + 1;
        if (o == 0) {{ return steps; }}
        if (o == 1) {{ regs[rd] = imm; }}
        if (o == 2) {{ regs[rd] = regs[rd] + regs[rs]; }}
        if (o == 3) {{ regs[rd] = regs[rd] - regs[rs]; }}
        if (o == 4) {{ if (regs[rs] != 0) {{ pc = imm; }} }}
        if (o == 5) {{ regs[rd] = regs[rs]; }}
        if (o == 6) {{ regs[rd] = regs[rd] + imm; }}
        steps = steps + 1;
    }}
    assert(0, 51);      // guest ran away
    return 0;
}}

// Guest program: iterative fibonacci of n (n in r2), result in r0.
fn load_fib(n) {{
    nprog = 0;
    emit1(1, 0, 0, 0);      // 0: li r0, 0
    emit1(1, 1, 0, 1);      // 1: li r1, 1
    emit1(1, 2, 0, n);      // 2: li r2, n
    emit1(5, 3, 1, 0);      // 3: mov r3, r1       <- loop
    emit1(2, 1, 0, 0);      // 4: add r1, r0
    emit1(5, 0, 3, 0);      // 5: mov r0, r3
    emit1(1, 4, 0, 1);      // 6: li r4, 1
    emit1(3, 2, 4, 0);      // 7: sub r2, r4
    emit1(4, 0, 2, 3);      // 8: jnz r2, 3
    emit1(0, 0, 0, 0);      // 9: halt
    return 0;
}}

fn fib_direct(n) {{
    reg a = 0;
    reg b = 1;
    while (n > 0) {{
        var t = b;
        b = b + a;
        a = t;
        n = n - 1;
    }}
    return a;
}}

fn main() {{
    reg runs = {runs};
    while (runs > 0) {{
        var n = 5 + (rnd() % 20);
        load_fib(n);
        interp(100000);
        assert(regs[0] == fib_direct(n), 52);
        runs = runs - 1;
    }}
    halt(0);
    return 0;
}}
",
        lcg = lcg(),
        runs = 30 * f
    )
}

/// perl: string hash table over a byte arena.
pub fn perl(f: u32) -> String {
    format!(
        "{lcg}
int arena[1024];
int key_off[256];
int key_len[256];
int htab_key[512];
int htab_val[512];

fn make_keys(count) {{
    var base = addr(arena);
    reg off = 0;
    reg i = 0;
    while (i < count) {{
        key_off[i] = off;
        // unique prefix from the index, then random letters
        sb(base + off, 107);                  // 'k'
        sb(base + off + 1, 48 + (i & 15));
        sb(base + off + 2, 48 + ((i >> 4) & 15));
        var len = 3 + (rnd() & 7);
        for (reg j = 3; j < len; j = j + 1) {{
            sb(base + off + j, 97 + (rnd() % 26));
        }}
        key_len[i] = len;
        off = off + len;
        assert(off < 4096, 61);
        i = i + 1;
    }}
    return 0;
}}

fn hash_key(k) {{
    var base = addr(arena) + key_off[k];
    var len = key_len[k];
    reg h = 5381;
    for (reg j = 0; j < len; j = j + 1) {{
        h = ((h << 5) + h) ^ lb(base + j);
    }}
    return h & 511;
}}

fn keys_equal(a, b) {{
    if (key_len[a] != key_len[b]) {{ return 0; }}
    var pa = addr(arena) + key_off[a];
    var pb = addr(arena) + key_off[b];
    var len = key_len[a];
    for (reg j = 0; j < len; j = j + 1) {{
        if (lb(pa + j) != lb(pb + j)) {{ return 0; }}
    }}
    return 1;
}}

// open addressing with linear probing; htab_key holds key-id + 1,
// 0 = empty, -1 = tombstone.
fn insert(k, v) {{
    reg h = hash_key(k);
    while (1) {{
        var e = htab_key[h];
        if (e <= 0) {{
            htab_key[h] = k + 1;
            htab_val[h] = v;
            return h;
        }}
        if (keys_equal(e - 1, k)) {{
            htab_val[h] = v;
            return h;
        }}
        h = (h + 1) & 511;
    }}
    return 0;
}}

fn lookup(k) {{
    reg h = hash_key(k);
    reg probes = 0;
    while (probes < 512) {{
        var e = htab_key[h];
        if (e == 0) {{ return 0 - 1; }}
        if (e > 0 && keys_equal(e - 1, k)) {{ return htab_val[h]; }}
        h = (h + 1) & 511;
        probes = probes + 1;
    }}
    return 0 - 1;
}}

fn remove(k) {{
    reg h = hash_key(k);
    reg probes = 0;
    while (probes < 512) {{
        var e = htab_key[h];
        if (e == 0) {{ return 0; }}
        if (e > 0 && keys_equal(e - 1, k)) {{
            htab_key[h] = 0 - 1;
            return 1;
        }}
        h = (h + 1) & 511;
        probes = probes + 1;
    }}
    return 0;
}}

fn main() {{
    reg rounds = {rounds};
    while (rounds > 0) {{
        for (reg i = 0; i < 512; i = i + 1) {{ htab_key[i] = 0; }}
        make_keys(200);
        for (reg i = 0; i < 200; i = i + 1) {{ insert(i, i * 3 + 7); }}
        for (reg i = 0; i < 200; i = i + 1) {{ assert(lookup(i) == i * 3 + 7, 62); }}
        for (reg i = 0; i < 200; i = i + 3) {{ assert(remove(i) == 1, 63); }}
        for (reg i = 0; i < 200; i = i + 1) {{
            if (i % 3 == 0) {{ assert(lookup(i) == 0 - 1, 64); }}
            else {{ assert(lookup(i) == i * 3 + 7, 65); }}
        }}
        for (reg i = 0; i < 200; i = i + 3) {{ insert(i, i + 1000); }}
        for (reg i = 0; i < 200; i = i + 3) {{ assert(lookup(i) == i + 1000, 66); }}
        rounds = rounds - 1;
    }}
    halt(0);
    return 0;
}}
",
        lcg = lcg(),
        rounds = f
    )
}

/// vortex: object store with per-type index lists and a transaction mix.
pub fn vortex(f: u32) -> String {
    format!(
        "{lcg}
int obj_id[512];
int obj_typ[512];
int obj_val[512];
int obj_nxt[512];
int head[4];
int cnt[4];
int sums[4];
int free_head;
int next_id;

fn reset_store() {{
    for (reg i = 0; i < 511; i = i + 1) {{ obj_nxt[i] = i + 1; }}
    obj_nxt[511] = 0 - 1;
    free_head = 0;
    for (reg t = 0; t < 4; t = t + 1) {{ head[t] = 0 - 1; cnt[t] = 0; sums[t] = 0; }}
    next_id = 1;
    return 0;
}}

fn insert_obj(t, v) {{
    var n = free_head;
    if (n < 0) {{ return 0 - 1; }}
    free_head = obj_nxt[n];
    obj_id[n] = next_id;
    next_id = next_id + 1;
    obj_typ[n] = t;
    obj_val[n] = v;
    obj_nxt[n] = head[t];
    head[t] = n;
    cnt[t] = cnt[t] + 1;
    sums[t] = sums[t] + v;
    return n;
}}

fn delete_head(t) {{
    var n = head[t];
    if (n < 0) {{ return 0; }}
    head[t] = obj_nxt[n];
    cnt[t] = cnt[t] - 1;
    sums[t] = sums[t] - obj_val[n];
    obj_nxt[n] = free_head;
    free_head = n;
    return 1;
}}

fn update_kth(t, k, delta) {{
    var n = head[t];
    while (k > 0 && n >= 0) {{
        n = obj_nxt[n];
        k = k - 1;
    }}
    if (n >= 0) {{
        obj_val[n] = obj_val[n] + delta;
        sums[t] = sums[t] + delta;
        return 1;
    }}
    return 0;
}}

fn scan_check(t) {{
    reg total = 0;
    reg n2 = 0;
    var n = head[t];
    while (n >= 0) {{
        total = total + obj_val[n];
        n2 = n2 + 1;
        n = obj_nxt[n];
    }}
    assert(total == sums[t], 71);
    assert(n2 == cnt[t], 72);
    return total;
}}

fn main() {{
    reg txns = {txns};
    reset_store();
    while (txns > 0) {{
        var r = rnd();
        var t = r & 3;
        var kind = (r >> 2) % 10;
        if (kind < 5) {{
            insert_obj(t, (r >> 5) & 1023);
        }} else {{
            if (kind < 7) {{ delete_head(t); }}
            else {{
                if (kind < 9) {{ update_kth(t, (r >> 5) & 15, (r >> 9) & 63); }}
                else {{ scan_check(t); }}
            }}
        }}
        txns = txns - 1;
    }}
    scan_check(0);
    scan_check(1);
    scan_check(2);
    scan_check(3);
    halt(0);
    return 0;
}}
",
        lcg = lcg(),
        txns = 700 * f
    )
}

/// xlisp: N-queens over cons cells (xlisp ran `queens 7`).
pub fn xlisp(f: u32) -> String {
    format!(
        "{lcg}
int car_[4096];
int cdr_[4096];
int freep;

fn cons(a, d) {{
    var c = freep;
    freep = freep + 1;
    assert(freep < 4096, 81);
    car_[c] = a;
    cdr_[c] = d;
    return c;
}}

// Is placing `row` in the next column safe against `placed` (a list of
// rows, nearest column first)?
fn safe(row, placed) {{
    reg d = 1;
    while (placed != 0) {{
        var r = car_[placed];
        if (r == row) {{ return 0; }}
        if (r + d == row) {{ return 0; }}
        if (r - d == row) {{ return 0; }}
        d = d + 1;
        placed = cdr_[placed];
    }}
    return 1;
}}

fn solve(col, n, placed) {{
    if (col == n) {{ return 1; }}
    reg count = 0;
    reg row = 0;
    while (row < n) {{
        if (safe(row, placed)) {{
            count = count + solve(col + 1, n, cons(row, placed));
        }}
        row = row + 1;
    }}
    return count;
}}

fn main() {{
    reg games = {f};
    while (games > 0) {{
        freep = 1;       // cell 0 is nil
        var c = solve(0, 7, 0);
        assert(c == 40, 82);       // queens(7) has 40 solutions
        // sweep: every allocated cell must hold a valid row and link
        for (reg i = 1; i < freep; i = i + 1) {{
            assert(car_[i] >= 0 && car_[i] < 7, 83);
            assert(cdr_[i] >= 0 && cdr_[i] < i, 84);
        }}
        games = games - 1;
    }}
    halt(0);
    return 0;
}}
",
        lcg = lcg()
    )
}
