//! The reproduction's benchmark suite: one synthetic program per
//! SPECint95 member (paper Table 2), each reproducing its counterpart's
//! dominant algorithmic character (see DESIGN.md §5), written in minicc
//! and compiled by the `dtsvliw-minicc` stand-in for `gcc`.
//!
//! Every program is **self-checking**: internal invariants (round-trip
//! equality, mirror symmetry, cross-implementation agreement, known
//! combinatorial counts) abort the run via `assert` if execution is
//! wrong, so any simulator defect that corrupts state kills the
//! benchmark run loudly — on top of the DTSVLIW machine's own test-mode
//! co-simulation.

mod programs;

use dtsvliw_asm::Image;
use dtsvliw_minicc::compile_to_image;

/// How big a run to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few tens of thousands of instructions: unit tests.
    Test,
    /// A few hundred thousand to ~2M instructions: the default for the
    /// experiment harness (the paper ran ≥50M; the shape of its curves
    /// stabilises far earlier — see EXPERIMENTS.md).
    Small,
    /// Several million instructions per benchmark.
    Large,
}

impl Scale {
    fn factor(self) -> u32 {
        match self {
            Scale::Test => 1,
            Scale::Small => 8,
            Scale::Large => 40,
        }
    }
}

/// One benchmark program.
pub struct Workload {
    /// SPECint95 counterpart name (paper Table 2).
    pub name: &'static str,
    /// What it does and which trait of the counterpart it reproduces.
    pub description: &'static str,
    /// minicc source.
    pub source: String,
    /// Expected exit code (`halt` value) when known statically; all
    /// workloads additionally self-check internally.
    pub expected_exit: Option<u32>,
}

impl Workload {
    /// Compile to a loadable image.
    pub fn image(&self) -> Image {
        compile_to_image(&self.source)
            .unwrap_or_else(|e| panic!("workload {} does not compile: {e}", self.name))
    }
}

/// All eight workloads at the given scale, in the paper's Table 2 order.
pub fn all(scale: Scale) -> Vec<Workload> {
    let f = scale.factor();
    vec![
        Workload {
            name: "compress",
            description: "LZW compression + decompression round trip (compress95: LZW \
                          coding, table lookups, tight byte loops)",
            source: programs::compress(f),
            expected_exit: Some(0),
        },
        Workload {
            name: "gcc",
            description: "expression-tree construction, recursive evaluation and a \
                          constant-folding pass (gcc: branchy tree walking across many \
                          small routines)",
            source: programs::gcc(f),
            expected_exit: Some(0),
        },
        Workload {
            name: "go",
            description: "19x19 board influence propagation with mirror-symmetry \
                          self-check (go: board scans, heavy branching, large working \
                          set)",
            source: programs::go(f),
            expected_exit: Some(0),
        },
        Workload {
            name: "ijpeg",
            description: "8x8 reversible integer butterfly transform over an image, \
                          forward + inverse + equality check (ijpeg: loop-dominated \
                          integer DSP with high ILP)",
            source: programs::ijpeg(f),
            expected_exit: Some(0),
        },
        Workload {
            name: "m88ksim",
            description: "interpreter for a tiny register machine, checked against \
                          direct computation (m88ksim: decode-dispatch simulator loop)",
            source: programs::m88ksim(f),
            expected_exit: Some(0),
        },
        Workload {
            name: "perl",
            description: "string hash table insert/lookup/delete mix over a byte arena \
                          (perl: string hashing and associative containers)",
            source: programs::perl(f),
            expected_exit: Some(0),
        },
        Workload {
            name: "vortex",
            description: "slab-allocated object store with per-type index lists and \
                          transaction mix (vortex: pointer-chasing object database)",
            source: programs::vortex(f),
            expected_exit: Some(0),
        },
        Workload {
            name: "xlisp",
            description: "N-queens over cons-cell lists with reachability sweep \
                          (xlisp ran `queens 7`: recursion and list structures)",
            source: programs::xlisp(f),
            expected_exit: Some(0),
        },
    ]
}

/// Find one workload by name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    all(scale).into_iter().find(|w| w.name == name)
}
