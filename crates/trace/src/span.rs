//! Campaign spans: typed begin/end intervals with stable ids, recorded
//! on either side of the coordinator/worker wire and merged into one
//! Perfetto-compatible trace (DESIGN.md §15).
//!
//! The simulator's own trace events ([`crate::TraceEvent`]) live on the
//! *cycle* timeline of one machine; campaign spans live on the
//! *wall-clock millisecond* timeline of a whole distributed campaign.
//! Worker-side spans are recorded against the worker's local monotonic
//! clock (milliseconds since it received the lease) and normalised by
//! the coordinator against the lease-grant anchor:
//! `t_coord = t_grant + t_worker`.
//!
//! Two projections come out of one span log:
//!
//! * [`merge_perfetto`] — the full wall-clock trace (one track per
//!   slot/endpoint, counter tracks derived from lease begin/end pairs
//!   and chaos-strike instants), loadable at <https://ui.perfetto.dev>;
//! * [`canonical_spans`] — the timestamp-stripped deterministic subset
//!   (the campaign span plus every *non-forgiven* attempt), which must
//!   be byte-identical between a chaos storm and an undisturbed run,
//!   exactly like the campaign report.

use dtsvliw_json::Json;

/// What a span describes. Every kind has a stable lower-case label used
/// on the wire, in the JSONL log, and as the Perfetto event name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole campaign, begin to drain.
    Campaign,
    /// One attempt of one job (local babysit or remote lease).
    JobAttempt,
    /// A lease's wire lifetime (issue to settle), coordinator side —
    /// or the worker-observed child execution when `side=worker`.
    Lease,
    /// A work-stealing claim took a job from a sibling shard.
    Steal,
    /// A remote slot's connect attempt failed and is backing off.
    Reconnect,
    /// A snapshot crossed the wire (shipment or inbound landing).
    SnapshotShip,
    /// A chaos-harness strike (process or network).
    ChaosStrike,
}

/// Every kind, in a stable order (useful for exhaustive summaries).
pub const SPAN_KINDS: [SpanKind; 7] = [
    SpanKind::Campaign,
    SpanKind::JobAttempt,
    SpanKind::Lease,
    SpanKind::Steal,
    SpanKind::Reconnect,
    SpanKind::SnapshotShip,
    SpanKind::ChaosStrike,
];

impl SpanKind {
    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Campaign => "campaign",
            SpanKind::JobAttempt => "job_attempt",
            SpanKind::Lease => "lease",
            SpanKind::Steal => "steal",
            SpanKind::Reconnect => "reconnect",
            SpanKind::SnapshotShip => "snapshot_ship",
            SpanKind::ChaosStrike => "chaos_strike",
        }
    }

    /// Parse a label back (wire/JSONL direction).
    pub fn from_label(s: &str) -> Option<SpanKind> {
        SPAN_KINDS.iter().copied().find(|k| k.label() == s)
    }
}

/// Begin/end discipline of one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Interval opens (pairs with an [`SpanPhase::End`] of the same id).
    Begin,
    /// Interval closes.
    End,
    /// A point event.
    Instant,
    /// A counter-track sample (`args` carries the sampled values).
    Counter,
}

impl SpanPhase {
    /// The Perfetto-style phase letter used in the JSONL form.
    pub fn label(self) -> &'static str {
        match self {
            SpanPhase::Begin => "B",
            SpanPhase::End => "E",
            SpanPhase::Instant => "i",
            SpanPhase::Counter => "C",
        }
    }

    /// Parse a phase letter back.
    pub fn from_label(s: &str) -> Option<SpanPhase> {
        match s {
            "B" => Some(SpanPhase::Begin),
            "E" => Some(SpanPhase::End),
            "i" => Some(SpanPhase::Instant),
            "C" => Some(SpanPhase::Counter),
            _ => None,
        }
    }
}

/// One span record: a begin, end, instant, or counter sample, stamped
/// in campaign milliseconds on a named track.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Milliseconds since the campaign (or, worker-side, the lease)
    /// started.
    pub t_ms: u64,
    pub kind: SpanKind,
    pub phase: SpanPhase,
    /// Stable id pairing a [`SpanPhase::Begin`] with its
    /// [`SpanPhase::End`]; 0 for instants/counters that pair nothing.
    pub id: u64,
    /// Track (slot or endpoint) the span belongs to.
    pub track: String,
    /// Free-form payload (job id, outcome, endpoint, ...).
    pub args: Vec<(String, Json)>,
}

impl SpanEvent {
    /// One JSONL line: `{"t":…,"kind":…,"ph":…,"id":…,"track":…,"args":{…}}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("t", Json::U64(self.t_ms)),
            ("kind", Json::Str(self.kind.label().to_string())),
            ("ph", Json::Str(self.phase.label().to_string())),
            ("id", Json::U64(self.id)),
            ("track", Json::Str(self.track.clone())),
            ("args", Json::Obj(self.args.clone())),
        ])
    }

    /// Parse one JSONL record back; `None` for anything malformed (the
    /// reader must survive torn relay batches).
    pub fn from_json(j: &Json) -> Option<SpanEvent> {
        Some(SpanEvent {
            t_ms: j.get("t")?.as_u64()?,
            kind: SpanKind::from_label(j.get("kind")?.as_str()?)?,
            phase: SpanPhase::from_label(j.get("ph")?.as_str()?)?,
            id: j.get("id")?.as_u64()?,
            track: j.get("track")?.as_str()?.to_string(),
            args: match j.get("args") {
                Some(Json::Obj(pairs)) => pairs.clone(),
                _ => Vec::new(),
            },
        })
    }

    /// Look up one argument.
    pub fn arg(&self, key: &str) -> Option<&Json> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// An in-memory span recorder. Plain data — callers that share one
/// across threads wrap it in their own lock.
#[derive(Debug, Default)]
pub struct SpanLog {
    events: Vec<SpanEvent>,
}

impl SpanLog {
    pub fn new() -> SpanLog {
        SpanLog::default()
    }

    pub fn push(&mut self, ev: SpanEvent) {
        self.events.push(ev);
    }

    /// Convenience: record one event from its parts.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        t_ms: u64,
        kind: SpanKind,
        phase: SpanPhase,
        id: u64,
        track: &str,
        args: Vec<(String, Json)>,
    ) {
        self.push(SpanEvent {
            t_ms,
            kind,
            phase,
            id,
            track: track.to_string(),
            args,
        });
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Take ownership of the recorded events.
    pub fn into_events(self) -> Vec<SpanEvent> {
        self.events
    }

    /// The whole log as JSONL text.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for ev in &self.events {
            s.push_str(&ev.to_json().to_string());
            s.push('\n');
        }
        s
    }
}

/// Parse a JSONL span log; malformed or torn lines are skipped, never
/// an error (the same defensive posture as heartbeat tailing).
pub fn parse_jsonl(text: &str) -> Vec<SpanEvent> {
    let complete = text.rfind('\n').map_or(0, |p| p + 1);
    text[..complete]
        .lines()
        .filter_map(|line| Json::parse(line).ok())
        .filter_map(|j| SpanEvent::from_json(&j))
        .collect()
}

// ---------------------------------------------------------------------
// The Perfetto merge
// ---------------------------------------------------------------------

fn meta_record(name: &str, tid: Option<u64>, value: &str) -> Json {
    let mut pairs = vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("ph".to_string(), Json::Str("M".to_string())),
        ("pid".to_string(), Json::U64(1)),
    ];
    if let Some(tid) = tid {
        pairs.push(("tid".to_string(), Json::U64(tid)));
    }
    pairs.push((
        "args".to_string(),
        Json::obj([("name", Json::Str(value.to_string()))]),
    ));
    Json::Obj(pairs)
}

/// Merge a span log into one Chrome trace-event document (array form,
/// the same shape [`crate::PerfettoSink`] writes): `ph:"X"` complete
/// events for begin/end pairs, `ph:"i"` instants, `ph:"C"` counters.
/// One thread per distinct track (first-appearance order); three
/// derived counter tracks ride along — leases in flight (from lease
/// begin/end pairs), cumulative chaos strikes, and any explicit
/// [`SpanPhase::Counter`] samples. Events are emitted in nondecreasing
/// timestamp order, so per-track monotonicity holds by construction.
pub fn merge_perfetto(events: &[SpanEvent]) -> Json {
    // Track table in first-appearance order.
    let mut tracks: Vec<&str> = Vec::new();
    for ev in events {
        if !tracks.contains(&ev.track.as_str()) {
            tracks.push(ev.track.as_str());
        }
    }
    let tid = |name: &str| -> u64 { tracks.iter().position(|t| *t == name).unwrap_or(0) as u64 };

    // Pair begins with their ends by (kind, id).
    let mut out: Vec<(u64, Json)> = Vec::new();
    let mut open: Vec<(SpanKind, u64, &SpanEvent)> = Vec::new();
    let mut leases_in_flight: i64 = 0;
    let mut strikes: u64 = 0;
    for ev in events {
        match ev.phase {
            SpanPhase::Begin => {
                open.push((ev.kind, ev.id, ev));
                if ev.kind == SpanKind::Lease {
                    leases_in_flight += 1;
                    out.push((
                        ev.t_ms,
                        counter_sample("leases in flight", ev.t_ms, leases_in_flight.max(0) as u64),
                    ));
                }
            }
            SpanPhase::End => {
                let begun = open
                    .iter()
                    .rposition(|(k, id, _)| *k == ev.kind && *id == ev.id)
                    .map(|i| open.remove(i).2);
                if ev.kind == SpanKind::Lease {
                    leases_in_flight -= 1;
                    out.push((
                        ev.t_ms,
                        counter_sample("leases in flight", ev.t_ms, leases_in_flight.max(0) as u64),
                    ));
                }
                let (start, mut args) = match begun {
                    Some(b) => (b.t_ms.min(ev.t_ms), b.args.clone()),
                    None => (ev.t_ms, Vec::new()),
                };
                // End args win over begin args on key collision.
                for (k, v) in &ev.args {
                    if let Some(slot) = args.iter_mut().find(|(ak, _)| ak == k) {
                        slot.1 = v.clone();
                    } else {
                        args.push((k.clone(), v.clone()));
                    }
                }
                args.push(("kind".to_string(), Json::Str(ev.kind.label().to_string())));
                let name = args
                    .iter()
                    .find(|(k, _)| k == "name")
                    .and_then(|(_, v)| v.as_str())
                    .map(|s| format!("{} {s}", ev.kind.label()))
                    .unwrap_or_else(|| ev.kind.label().to_string());
                out.push((
                    start,
                    Json::obj([
                        ("name", Json::Str(name)),
                        ("ph", Json::Str("X".to_string())),
                        ("ts", Json::U64(start * 1000)),
                        ("dur", Json::U64(ev.t_ms.saturating_sub(start) * 1000)),
                        ("pid", Json::U64(1)),
                        ("tid", Json::U64(tid(&ev.track))),
                        ("args", Json::Obj(args)),
                    ]),
                ));
            }
            SpanPhase::Instant => {
                if ev.kind == SpanKind::ChaosStrike {
                    strikes += 1;
                    out.push((ev.t_ms, counter_sample("chaos strikes", ev.t_ms, strikes)));
                }
                let mut args = ev.args.clone();
                args.push(("kind".to_string(), Json::Str(ev.kind.label().to_string())));
                out.push((
                    ev.t_ms,
                    Json::obj([
                        ("name", Json::Str(ev.kind.label().to_string())),
                        ("ph", Json::Str("i".to_string())),
                        ("ts", Json::U64(ev.t_ms * 1000)),
                        ("pid", Json::U64(1)),
                        ("tid", Json::U64(tid(&ev.track))),
                        ("s", Json::Str("t".to_string())),
                        ("args", Json::Obj(args)),
                    ]),
                ));
            }
            SpanPhase::Counter => {
                let name = ev
                    .arg("name")
                    .and_then(Json::as_str)
                    .unwrap_or("counter")
                    .to_string();
                let values: Vec<(String, Json)> = ev
                    .args
                    .iter()
                    .filter(|(k, _)| k != "name")
                    .cloned()
                    .collect();
                out.push((
                    ev.t_ms,
                    Json::obj([
                        ("name", Json::Str(name)),
                        ("ph", Json::Str("C".to_string())),
                        ("ts", Json::U64(ev.t_ms * 1000)),
                        ("pid", Json::U64(1)),
                        ("tid", Json::U64(tid(&ev.track))),
                        ("args", Json::Obj(values)),
                    ]),
                ));
            }
        }
    }
    // A begin that never ended still deserves a mark (campaign killed
    // mid-flight): render it as an instant so nothing is silently lost.
    for (_, _, b) in open {
        let mut args = b.args.clone();
        args.push(("kind".to_string(), Json::Str(b.kind.label().to_string())));
        args.push(("unclosed".to_string(), Json::Bool(true)));
        out.push((
            b.t_ms,
            Json::obj([
                ("name", Json::Str(b.kind.label().to_string())),
                ("ph", Json::Str("i".to_string())),
                ("ts", Json::U64(b.t_ms * 1000)),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(tid(&b.track))),
                ("s", Json::Str("t".to_string())),
                ("args", Json::Obj(args)),
            ]),
        ));
    }
    // Stable sort by start time preserves the log's causal order among
    // same-millisecond events and guarantees per-track monotonic ts.
    out.sort_by_key(|(t, _)| *t);

    let mut doc = vec![meta_record("process_name", None, "dtsvliw-campaign")];
    for (i, t) in tracks.iter().enumerate() {
        doc.push(meta_record("thread_name", Some(i as u64), t));
    }
    doc.extend(out.into_iter().map(|(_, j)| j));
    Json::Arr(doc)
}

fn counter_sample(name: &str, t_ms: u64, value: u64) -> Json {
    Json::obj([
        ("name", Json::Str(name.to_string())),
        ("ph", Json::Str("C".to_string())),
        ("ts", Json::U64(t_ms * 1000)),
        ("pid", Json::U64(1)),
        // Derived counters live on their own implicit track 0; Perfetto
        // keys counter tracks by (pid, name), so tid is cosmetic here.
        ("tid", Json::U64(0)),
        ("args", Json::obj([("value", Json::U64(value))])),
    ])
}

// ---------------------------------------------------------------------
// The canonical (deterministic) projection
// ---------------------------------------------------------------------

/// The timestamp-stripped deterministic span set: the campaign span
/// plus every non-forgiven `job_attempt` end, reduced to
/// `(job, n, outcome)` where `n` is the attempt's consumed-retry index.
/// Chaos-shaped fields (timestamps, tracks, the `resumed` flag,
/// forgiven attempts, steals, reconnects, strikes) are all projected
/// away, so a chaos storm and an undisturbed run of the same campaign
/// render byte-identical text — the cmp gate CI holds them to.
pub fn canonical_spans(events: &[SpanEvent]) -> String {
    let mut lines: Vec<(u64, u64, String)> = Vec::new();
    let mut campaign_jobs: Option<u64> = None;
    for ev in events {
        match (ev.kind, ev.phase) {
            (SpanKind::Campaign, SpanPhase::Begin) => {
                campaign_jobs = ev.arg("jobs").and_then(Json::as_u64);
            }
            (SpanKind::JobAttempt, SpanPhase::End) => {
                let forgiven = ev.arg("forgiven").and_then(Json::as_bool).unwrap_or(false);
                let (Some(job), Some(n)) = (
                    ev.arg("job").and_then(Json::as_u64),
                    ev.arg("n").and_then(Json::as_u64),
                ) else {
                    continue; // soft-deadline requeues carry no consumed index
                };
                if forgiven {
                    continue;
                }
                let outcome = ev.arg("outcome").and_then(Json::as_str).unwrap_or("?");
                lines.push((
                    job,
                    n,
                    format!("{{\"kind\":\"job_attempt\",\"job\":{job},\"n\":{n},\"outcome\":\"{outcome}\"}}"),
                ));
            }
            _ => {}
        }
    }
    lines.sort();
    lines.dedup();
    let mut out = format!(
        "{{\"kind\":\"campaign\",\"jobs\":{}}}\n",
        campaign_jobs.unwrap_or(0)
    );
    for (_, _, line) in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Perfetto document validation
// ---------------------------------------------------------------------

/// Schema-check a Chrome trace-event document (the array form both
/// [`crate::PerfettoSink`] and [`merge_perfetto`] emit): every record
/// an object with a `name` and a known `ph`; every non-metadata record
/// carrying `ts`/`pid`/`tid`; `X` records carrying `dur`; per-track
/// timestamps nondecreasing in document order; `B`/`E` records (legacy
/// duration events) balanced per track. Returns the event count.
pub fn validate_perfetto(doc: &Json) -> Result<u64, String> {
    let Some(arr) = doc.as_arr() else {
        return Err("not a trace-event array".to_string());
    };
    let mut last_ts: Vec<((u64, u64), u64)> = Vec::new();
    let mut be_depth: Vec<((u64, u64), i64)> = Vec::new();
    let mut count = 0u64;
    for (i, rec) in arr.iter().enumerate() {
        if !matches!(rec, Json::Obj(_)) {
            return Err(format!("record {i}: not an object"));
        }
        if rec.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("record {i}: no name"));
        }
        let ph = rec
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {i}: no ph"))?;
        if !matches!(ph, "M" | "X" | "i" | "C" | "B" | "E") {
            return Err(format!("record {i}: unknown ph `{ph}`"));
        }
        if ph == "M" {
            continue;
        }
        count += 1;
        let ts = rec
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("record {i}: no ts"))?;
        let pid = rec
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("record {i}: no pid"))?;
        let tid = rec
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("record {i}: no tid"))?;
        if ph == "X" && rec.get("dur").and_then(Json::as_u64).is_none() {
            return Err(format!("record {i}: X without dur"));
        }
        let key = (pid, tid);
        match last_ts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, last)) => {
                if ts < *last {
                    return Err(format!(
                        "record {i}: ts {ts} goes backwards on track {key:?} (last {last})"
                    ));
                }
                *last = ts;
            }
            None => last_ts.push((key, ts)),
        }
        if ph == "B" || ph == "E" {
            let slot = match be_depth.iter_mut().find(|(k, _)| *k == key) {
                Some((_, d)) => d,
                None => {
                    be_depth.push((key, 0));
                    &mut be_depth.last_mut().unwrap().1
                }
            };
            *slot += if ph == "B" { 1 } else { -1 };
            if *slot < 0 {
                return Err(format!("record {i}: E without B on track {key:?}"));
            }
        }
    }
    for (key, depth) in be_depth {
        if depth != 0 {
            return Err(format!("track {key:?}: {depth} unclosed B records"));
        }
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        t: u64,
        kind: SpanKind,
        phase: SpanPhase,
        id: u64,
        track: &str,
        args: Vec<(String, Json)>,
    ) -> SpanEvent {
        SpanEvent {
            t_ms: t,
            kind,
            phase,
            id,
            track: track.to_string(),
            args,
        }
    }

    fn attempt_end(t: u64, job: u64, n: Option<u64>, outcome: &str, forgiven: bool) -> SpanEvent {
        let mut args = vec![
            ("job".to_string(), Json::U64(job)),
            ("outcome".to_string(), Json::Str(outcome.to_string())),
            ("forgiven".to_string(), Json::Bool(forgiven)),
            ("resumed".to_string(), Json::Bool(t.is_multiple_of(2))),
        ];
        if let Some(n) = n {
            args.push(("n".to_string(), Json::U64(n)));
        }
        ev(
            t,
            SpanKind::JobAttempt,
            SpanPhase::End,
            job * 100 + t,
            "w0",
            args,
        )
    }

    #[test]
    fn labels_round_trip() {
        for k in SPAN_KINDS {
            assert_eq!(SpanKind::from_label(k.label()), Some(k));
        }
        assert_eq!(SpanKind::from_label("nope"), None);
        for p in [
            SpanPhase::Begin,
            SpanPhase::End,
            SpanPhase::Instant,
            SpanPhase::Counter,
        ] {
            assert_eq!(SpanPhase::from_label(p.label()), Some(p));
        }
    }

    #[test]
    fn jsonl_round_trip_and_torn_tolerance() {
        let mut log = SpanLog::new();
        log.record(
            5,
            SpanKind::Lease,
            SpanPhase::Begin,
            7,
            "r1:host:1",
            vec![("job".to_string(), Json::U64(3))],
        );
        log.record(9, SpanKind::Lease, SpanPhase::End, 7, "r1:host:1", vec![]);
        let text = log.to_jsonl();
        let back = parse_jsonl(&text);
        assert_eq!(back, log.events());
        // A torn final line and garbage lines are skipped, not errors.
        let dirty = format!("{text}###garbage###\n{{\"t\": 1, \"kin");
        assert_eq!(parse_jsonl(&dirty).len(), 2);
    }

    #[test]
    fn merge_pairs_begin_end_into_complete_events() {
        let events = vec![
            ev(
                0,
                SpanKind::Campaign,
                SpanPhase::Begin,
                0,
                "campaign",
                vec![("jobs".to_string(), Json::U64(2))],
            ),
            ev(
                2,
                SpanKind::Lease,
                SpanPhase::Begin,
                1,
                "r1:h",
                vec![("job".to_string(), Json::U64(0))],
            ),
            ev(
                3,
                SpanKind::Steal,
                SpanPhase::Instant,
                0,
                "w0",
                vec![("job".to_string(), Json::U64(1))],
            ),
            ev(8, SpanKind::Lease, SpanPhase::End, 1, "r1:h", vec![]),
            ev(
                10,
                SpanKind::Campaign,
                SpanPhase::End,
                0,
                "campaign",
                vec![("succeeded".to_string(), Json::U64(2))],
            ),
        ];
        let doc = merge_perfetto(&events);
        let n = validate_perfetto(&doc).expect("valid merged doc");
        assert!(n >= 4, "{n}");
        let arr = doc.as_arr().unwrap();
        let xs: Vec<&Json> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2); // campaign + lease
        let lease = xs
            .iter()
            .find(|e| {
                e.get("args")
                    .and_then(|a| a.get("kind"))
                    .and_then(Json::as_str)
                    == Some("lease")
            })
            .expect("lease X event");
        assert_eq!(lease.get("ts").and_then(Json::as_u64), Some(2000));
        assert_eq!(lease.get("dur").and_then(Json::as_u64), Some(6000));
        // The derived leases-in-flight counter sampled at begin and end.
        let counters: Vec<&Json> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("leases in flight"))
            .collect();
        assert_eq!(counters.len(), 2);
        // Thread-name metadata for every distinct track.
        let names: Vec<&str> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(names.contains(&"campaign") && names.contains(&"w0") && names.contains(&"r1:h"));
    }

    #[test]
    fn merge_survives_unclosed_begins() {
        let events = vec![ev(
            4,
            SpanKind::JobAttempt,
            SpanPhase::Begin,
            9,
            "w0",
            vec![],
        )];
        let doc = merge_perfetto(&events);
        validate_perfetto(&doc).expect("unclosed begin renders as instant");
        let arr = doc.as_arr().unwrap();
        assert!(arr.iter().any(|e| {
            e.get("args")
                .and_then(|a| a.get("unclosed"))
                .and_then(Json::as_bool)
                == Some(true)
        }));
    }

    #[test]
    fn canonical_projection_strips_chaos_shape() {
        let calm = vec![
            ev(
                0,
                SpanKind::Campaign,
                SpanPhase::Begin,
                0,
                "campaign",
                vec![("jobs".to_string(), Json::U64(2))],
            ),
            attempt_end(10, 0, Some(0), "success", false),
            attempt_end(20, 1, Some(0), "timeout", false),
            attempt_end(30, 1, Some(1), "success", false),
        ];
        let mut storm = calm.clone();
        // Chaos inserts forgiven attempts, steals, strikes, reconnects,
        // different timestamps and an index-less requeue — all of which
        // the projection must erase.
        storm.insert(1, attempt_end(5, 0, Some(0), "signal", true));
        storm.insert(2, attempt_end(6, 1, None, "requeued", false));
        storm.push(ev(7, SpanKind::Steal, SpanPhase::Instant, 0, "w1", vec![]));
        storm.push(ev(
            8,
            SpanKind::ChaosStrike,
            SpanPhase::Instant,
            0,
            "chaos",
            vec![],
        ));
        for e in &mut storm {
            e.t_ms += 1000;
        }
        assert_eq!(canonical_spans(&calm), canonical_spans(&storm));
        let canon = canonical_spans(&calm);
        assert!(canon.contains("\"jobs\":2"), "{canon}");
        assert!(
            canon.contains("\"job\":1,\"n\":1,\"outcome\":\"success\""),
            "{canon}"
        );
        assert!(
            !canon.contains("resumed"),
            "resumed is chaos-shaped: {canon}"
        );
    }

    #[test]
    fn validation_catches_malformed_documents() {
        assert!(validate_perfetto(&Json::U64(3)).is_err());
        let no_ph = Json::Arr(vec![Json::obj([("name", Json::Str("x".into()))])]);
        assert!(validate_perfetto(&no_ph).unwrap_err().contains("no ph"));
        let backwards = Json::Arr(vec![
            Json::obj([
                ("name", Json::Str("a".into())),
                ("ph", Json::Str("i".into())),
                ("ts", Json::U64(10)),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(0)),
            ]),
            Json::obj([
                ("name", Json::Str("b".into())),
                ("ph", Json::Str("i".into())),
                ("ts", Json::U64(5)),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(0)),
            ]),
        ]);
        assert!(validate_perfetto(&backwards)
            .unwrap_err()
            .contains("backwards"));
        let unbalanced = Json::Arr(vec![Json::obj([
            ("name", Json::Str("a".into())),
            ("ph", Json::Str("E".into())),
            ("ts", Json::U64(1)),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(0)),
        ])]);
        assert!(validate_perfetto(&unbalanced)
            .unwrap_err()
            .contains("E without B"));
    }
}
