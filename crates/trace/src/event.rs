//! Typed, cycle-stamped trace events.
//!
//! Every variant is `Copy` so the flight-recorder ring buffer can hold
//! them without allocation; payloads are the small scalars a postmortem
//! needs (addresses, block tags, slot counts), never owned strings.

use dtsvliw_json::{Json, ToJson};
use std::fmt;

/// Which engine a [`TraceEvent::ModeSwap`] hands control to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The Primary Processor (sequential execution + scheduling).
    Primary,
    /// The VLIW Engine (executing a cached block).
    Vliw,
}

impl EngineKind {
    /// Lower-case label used by every sink.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Primary => "primary",
            EngineKind::Vliw => "vliw",
        }
    }
}

/// Which memory-hierarchy cache missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// Primary Processor instruction cache.
    Instruction,
    /// Shared data cache.
    Data,
}

impl CacheKind {
    /// Lower-case label used by every sink.
    pub fn label(self) -> &'static str {
        match self {
            CacheKind::Instruction => "icache",
            CacheKind::Data => "dcache",
        }
    }
}

/// Why a block left the VLIW cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// LRU replacement by a newly scheduled block.
    Replaced,
    /// Invalidated (e.g. self-modifying code or explicit flush).
    Invalidated,
    /// Quarantined after a detected corruption: the line is invalidated
    /// and its tag refused re-installation for a cooldown period.
    Quarantined,
}

impl EvictReason {
    /// Lower-case label used by every sink.
    pub fn label(self) -> &'static str {
        match self {
            EvictReason::Replaced => "replaced",
            EvictReason::Invalidated => "invalidated",
            EvictReason::Quarantined => "quarantined",
        }
    }
}

/// One observable machine event. See DESIGN.md §Observability for the
/// schema each sink renders this into.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// Control transferred between the Primary Processor and the VLIW
    /// Engine; `pc` is the sequential address execution resumes at.
    ModeSwap { to: EngineKind, pc: u32 },
    /// The Scheduler Unit sealed a block and installed it in the VLIW
    /// cache: `lis` long instructions (height), `filled` occupied slots.
    BlockInstall { tag: u32, lis: u32, filled: u32 },
    /// A block left the VLIW cache after `lifetime` cycles resident.
    BlockEvict {
        tag: u32,
        reason: EvictReason,
        lifetime: u64,
    },
    /// The VLIW Engine finished a long instruction of block `tag`,
    /// committing `committed` operations.
    LiCommit { tag: u32, li: u32, committed: u32 },
    /// A long instruction annulled `annulled` operations whose branch
    /// tags disagreed with the taken path.
    LiAnnul { tag: u32, li: u32, annulled: u32 },
    /// A scheduled branch left the block in an unexpected direction:
    /// execution redirects from `pc` to `target`.
    Mispredict { pc: u32, target: u32 },
    /// Load/store aliasing detected inside block `tag`; the engine must
    /// recover and fall back to the Primary Processor.
    AliasException { tag: u32 },
    /// Checkpoint recovery unwound `unwound` buffered stores of block
    /// `tag` before resuming sequential execution.
    CheckpointRecovery { tag: u32, unwound: u32 },
    /// A memory-hierarchy miss at `addr` (stall of `penalty` cycles).
    CacheMiss {
        cache: CacheKind,
        addr: u32,
        penalty: u32,
    },
    /// The scheduler split the current block at element `elem` of the
    /// instruction with sequence number `seq` (no free slot / dependence
    /// limit reached).
    SchedulerSplit { seq: u64, elem: u32 },
    /// The fault layer injected a fault of kind `site` into block `tag`
    /// (or armed one in the VLIW Engine for that block's execution).
    FaultInjected { site: &'static str, tag: u32 },
    /// The machine detected a corruption, rolled back, quarantined the
    /// line and replayed `replayed` sequential instructions on the
    /// Primary Processor before continuing.
    Recovery { tag: u32, replayed: u32 },
    /// The engine-level circuit breaker tripped: `events` detections
    /// landed inside the sliding window and the machine dropped to
    /// primary-only execution until cycle `until`.
    DegradedEnter { events: u32, until: u64 },
    /// The circuit-breaker cooldown elapsed after `cycles` degraded
    /// cycles; the VLIW Engine is re-armed.
    DegradedExit { cycles: u64 },
    /// Periodic progress counters, emitted at the heartbeat cadence
    /// while a tracer is attached so heartbeat data and full traces
    /// line up on one timeline. The Perfetto sink renders each field as
    /// a counter-track sample (`ph:"C"`); `ipc_milli` is IPC × 1000
    /// (kept integral so the event stays `Copy`-friendly and exact).
    Counters {
        instructions: u64,
        ipc_milli: u64,
        vliw_cycles: u64,
        primary_cycles: u64,
        overhead_cycles: u64,
        degraded_cycles: u64,
    },
}

impl TraceEvent {
    /// Stable event-kind name (the `kind` field of the JSONL schema and
    /// the Perfetto instant-event name).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ModeSwap { .. } => "mode_swap",
            TraceEvent::BlockInstall { .. } => "block_install",
            TraceEvent::BlockEvict { .. } => "block_evict",
            TraceEvent::LiCommit { .. } => "li_commit",
            TraceEvent::LiAnnul { .. } => "li_annul",
            TraceEvent::Mispredict { .. } => "mispredict",
            TraceEvent::AliasException { .. } => "alias_exception",
            TraceEvent::CheckpointRecovery { .. } => "checkpoint_recovery",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::SchedulerSplit { .. } => "scheduler_split",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::DegradedEnter { .. } => "degraded_enter",
            TraceEvent::DegradedExit { .. } => "degraded_exit",
            TraceEvent::Counters { .. } => "counters",
        }
    }

    /// Event payload as JSON key/value pairs (without `cycle`/`kind`).
    pub fn args(&self) -> Vec<(String, Json)> {
        fn hex(addr: u32) -> Json {
            Json::Str(format!("{addr:#x}"))
        }
        match *self {
            TraceEvent::ModeSwap { to, pc } => {
                vec![
                    ("to".into(), Json::Str(to.label().into())),
                    ("pc".into(), hex(pc)),
                ]
            }
            TraceEvent::BlockInstall { tag, lis, filled } => vec![
                ("tag".into(), hex(tag)),
                ("lis".into(), Json::U64(lis as u64)),
                ("filled".into(), Json::U64(filled as u64)),
            ],
            TraceEvent::BlockEvict {
                tag,
                reason,
                lifetime,
            } => vec![
                ("tag".into(), hex(tag)),
                ("reason".into(), Json::Str(reason.label().into())),
                ("lifetime".into(), Json::U64(lifetime)),
            ],
            TraceEvent::LiCommit { tag, li, committed } => vec![
                ("tag".into(), hex(tag)),
                ("li".into(), Json::U64(li as u64)),
                ("committed".into(), Json::U64(committed as u64)),
            ],
            TraceEvent::LiAnnul { tag, li, annulled } => vec![
                ("tag".into(), hex(tag)),
                ("li".into(), Json::U64(li as u64)),
                ("annulled".into(), Json::U64(annulled as u64)),
            ],
            TraceEvent::Mispredict { pc, target } => {
                vec![("pc".into(), hex(pc)), ("target".into(), hex(target))]
            }
            TraceEvent::AliasException { tag } => vec![("tag".into(), hex(tag))],
            TraceEvent::CheckpointRecovery { tag, unwound } => {
                vec![
                    ("tag".into(), hex(tag)),
                    ("unwound".into(), Json::U64(unwound as u64)),
                ]
            }
            TraceEvent::CacheMiss {
                cache,
                addr,
                penalty,
            } => vec![
                ("cache".into(), Json::Str(cache.label().into())),
                ("addr".into(), hex(addr)),
                ("penalty".into(), Json::U64(penalty as u64)),
            ],
            TraceEvent::SchedulerSplit { seq, elem } => {
                vec![
                    ("seq".into(), Json::U64(seq)),
                    ("elem".into(), Json::U64(elem as u64)),
                ]
            }
            TraceEvent::FaultInjected { site, tag } => {
                vec![
                    ("site".into(), Json::Str(site.into())),
                    ("tag".into(), hex(tag)),
                ]
            }
            TraceEvent::Recovery { tag, replayed } => {
                vec![
                    ("tag".into(), hex(tag)),
                    ("replayed".into(), Json::U64(replayed as u64)),
                ]
            }
            TraceEvent::DegradedEnter { events, until } => {
                vec![
                    ("events".into(), Json::U64(events as u64)),
                    ("until".into(), Json::U64(until)),
                ]
            }
            TraceEvent::DegradedExit { cycles } => {
                vec![("cycles".into(), Json::U64(cycles))]
            }
            TraceEvent::Counters {
                instructions,
                ipc_milli,
                vliw_cycles,
                primary_cycles,
                overhead_cycles,
                degraded_cycles,
            } => vec![
                ("instructions".into(), Json::U64(instructions)),
                ("ipc_milli".into(), Json::U64(ipc_milli)),
                ("vliw_cycles".into(), Json::U64(vliw_cycles)),
                ("primary_cycles".into(), Json::U64(primary_cycles)),
                ("overhead_cycles".into(), Json::U64(overhead_cycles)),
                ("degraded_cycles".into(), Json::U64(degraded_cycles)),
            ],
        }
    }

    /// Which Perfetto track (thread id) the event belongs to. Track 0 is
    /// reserved for engine-mode spans.
    pub fn track(&self) -> u32 {
        match self {
            TraceEvent::ModeSwap { .. }
            | TraceEvent::DegradedEnter { .. }
            | TraceEvent::DegradedExit { .. } => 0,
            TraceEvent::BlockInstall { .. } | TraceEvent::SchedulerSplit { .. } => 1,
            TraceEvent::BlockEvict { .. } => 2,
            TraceEvent::LiCommit { .. }
            | TraceEvent::LiAnnul { .. }
            | TraceEvent::Mispredict { .. }
            | TraceEvent::AliasException { .. }
            | TraceEvent::CheckpointRecovery { .. }
            | TraceEvent::FaultInjected { .. }
            | TraceEvent::Recovery { .. } => 3,
            TraceEvent::CacheMiss { .. } => 4,
            TraceEvent::Counters { .. } => 5,
        }
    }
}

/// Perfetto track names, indexed by [`TraceEvent::track`].
pub(crate) const TRACK_NAMES: [&str; 6] = [
    "engine mode",
    "scheduler",
    "vliw-cache",
    "vliw-engine",
    "memory",
    "telemetry",
];

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<19}", self.kind())?;
        let args = self.args();
        let mut first = true;
        for (k, v) in &args {
            let sep = if first { " " } else { ", " };
            first = false;
            match v {
                Json::Str(s) => write!(f, "{sep}{k}={s}")?,
                other => write!(f, "{sep}{k}={other}")?,
            }
        }
        Ok(())
    }
}

/// A [`TraceEvent`] stamped with the machine cycle it happened on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stamped {
    /// Machine cycle (`RunStats.cycles` domain).
    pub cycle: u64,
    /// The event.
    pub event: TraceEvent,
}

impl fmt::Display for Stamped {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] {}", self.cycle, self.event)
    }
}

impl ToJson for Stamped {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("cycle".to_string(), Json::U64(self.cycle)),
            ("kind".to_string(), Json::Str(self.event.kind().to_string())),
        ];
        pairs.extend(self.event.args());
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_schema_has_cycle_and_kind() {
        let ev = Stamped {
            cycle: 42,
            event: TraceEvent::BlockInstall {
                tag: 0x2000,
                lis: 5,
                filled: 12,
            },
        };
        let j = ev.to_json();
        assert_eq!(j.get("cycle").and_then(Json::as_u64), Some(42));
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("block_install"));
        assert_eq!(j.get("tag").and_then(Json::as_str), Some("0x2000"));
        assert_eq!(j.get("lis").and_then(Json::as_u64), Some(5));
    }

    #[test]
    fn display_is_single_line() {
        let ev = Stamped {
            cycle: 7,
            event: TraceEvent::CacheMiss {
                cache: CacheKind::Data,
                addr: 0x1f0,
                penalty: 8,
            },
        };
        let s = ev.to_string();
        assert!(s.contains("cache_miss"));
        assert!(s.contains("dcache"));
        assert!(s.contains("0x1f0"));
        assert!(!s.contains('\n'));
    }

    #[test]
    fn every_kind_is_distinct() {
        let evs = [
            TraceEvent::ModeSwap {
                to: EngineKind::Vliw,
                pc: 0,
            },
            TraceEvent::BlockInstall {
                tag: 0,
                lis: 0,
                filled: 0,
            },
            TraceEvent::BlockEvict {
                tag: 0,
                reason: EvictReason::Replaced,
                lifetime: 0,
            },
            TraceEvent::LiCommit {
                tag: 0,
                li: 0,
                committed: 0,
            },
            TraceEvent::LiAnnul {
                tag: 0,
                li: 0,
                annulled: 0,
            },
            TraceEvent::Mispredict { pc: 0, target: 0 },
            TraceEvent::AliasException { tag: 0 },
            TraceEvent::CheckpointRecovery { tag: 0, unwound: 0 },
            TraceEvent::CacheMiss {
                cache: CacheKind::Instruction,
                addr: 0,
                penalty: 0,
            },
            TraceEvent::SchedulerSplit { seq: 0, elem: 0 },
            TraceEvent::FaultInjected {
                site: "cache-bit-flip",
                tag: 0,
            },
            TraceEvent::Recovery {
                tag: 0,
                replayed: 0,
            },
            TraceEvent::DegradedEnter {
                events: 0,
                until: 0,
            },
            TraceEvent::DegradedExit { cycles: 0 },
            TraceEvent::Counters {
                instructions: 0,
                ipc_milli: 0,
                vliw_cycles: 0,
                primary_cycles: 0,
                overhead_cycles: 0,
                degraded_cycles: 0,
            },
        ];
        let mut kinds: Vec<&str> = evs.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), evs.len());
        for e in &evs {
            assert!((e.track() as usize) < TRACK_NAMES.len());
        }
    }
}
