//! Sampling profiler: the [`crate::BlockProfiler`]'s report at a
//! fraction of its cost — and, crucially, without disarming the
//! machine's batched fast path.
//!
//! The exact profiler hooks every long instruction, so attaching it
//! routes execution to the stepped path. The [`SamplingProfiler`]
//! instead samples every Nth *block entry*: when an entry is picked,
//! the whole execution of that block (entry → exit) is recorded into an
//! inner [`crate::BlockProfiler`]; otherwise nothing is. The machine
//! keeps the armed/idle decision in a plain `bool`, so the per-LI cost
//! inside a burst is one predictable branch.
//!
//! **Why the ranking converges.** Block entries are sampled
//! stratified-systematically: entry number `k` of the run is recorded
//! iff `k ≡ 0 (mod N)`, independent of which block it enters. Over a
//! run in which block `b` is entered `E_b` times and absorbs `C_b`
//! cycles, the sampler records `⌊E_b/N⌋ ± 1` of its executions —
//! an unbiased 1/N thinning of every block's entry stream. Expected
//! sampled cycles are `C_b/N`, so the sampled cycle ranking estimates
//! the exact ranking with relative error shrinking as `E_b/N` grows;
//! hot blocks (large `E_b`) are exactly the ones estimated best. The
//! differential test in `crates/core/tests/telemetry.rs` checks top-10
//! rank overlap ≥ 8/10 against the exact profiler on all 8 workloads.

use crate::profile::{BlockProfiler, ExitKind};
use dtsvliw_json::Json;

/// Default sampling period: record one block entry in 16.
pub const DEFAULT_SAMPLE_PERIOD: u64 = 16;

/// Every-Nth-block-entry sampling wrapper around [`BlockProfiler`]
/// (see the module docs for the convergence argument).
#[derive(Debug, Clone)]
pub struct SamplingProfiler {
    inner: BlockProfiler,
    every: u64,
    /// Block entries observed (sampled or not).
    entries_seen: u64,
    /// Entries actually recorded.
    sampled: u64,
    /// The block being recorded right now, if the current execution was
    /// picked: per-LI and exit hooks only fire while this is set.
    current: Option<(u32, u8)>,
}

impl SamplingProfiler {
    /// A sampler recording every `every`-th block entry (clamped to
    /// >= 1; 1 records everything, like the exact profiler).
    pub fn new(every: u64) -> Self {
        SamplingProfiler {
            inner: BlockProfiler::new(),
            every: every.max(1),
            entries_seen: 0,
            sampled: 0,
            current: None,
        }
    }

    /// The sampling period N.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Block entries observed, sampled or not.
    pub fn entries_seen(&self) -> u64 {
        self.entries_seen
    }

    /// Entries recorded.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Observe a block entry; returns `true` when this execution is
    /// sampled (the caller caches the answer in a plain `bool` and
    /// routes per-LI hooks through it). Mirrors
    /// [`BlockProfiler::note_entry`].
    pub fn note_entry(
        &mut self,
        tag: u32,
        cwp: u8,
        chained: bool,
        cycle: u64,
        head: impl FnOnce() -> String,
    ) -> bool {
        let pick = self.entries_seen.is_multiple_of(self.every);
        self.entries_seen += 1;
        if pick {
            self.sampled += 1;
            self.current = Some((tag, cwp));
            self.inner.note_entry(tag, cwp, chained, cycle, head);
        } else {
            self.current = None;
        }
        pick
    }

    /// Record one long instruction of the currently sampled execution
    /// (no-op when the current execution was not picked).
    pub fn note_li(&mut self, ops: u32, width: u32, cycles: u64) {
        if let Some((tag, cwp)) = self.current {
            self.inner.note_li(tag, cwp, ops, width, cycles);
        }
    }

    /// Record how the currently sampled execution left its block and
    /// close the sample window.
    pub fn note_exit(&mut self, kind: ExitKind) {
        if let Some((tag, cwp)) = self.current.take() {
            self.inner.note_exit(tag, cwp, kind);
        }
    }

    /// The inner profiler holding the sampled accounting.
    pub fn profiler(&self) -> &BlockProfiler {
        &self.inner
    }

    /// The sampled report as JSON: the inner [`BlockProfiler`] report
    /// plus the sampling parameters needed to interpret it (counts are
    /// ≈ 1/N of the exact ones).
    pub fn report_json(&self, top_n: usize) -> Json {
        let mut j = self.inner.report_json(top_n);
        if let Json::Obj(pairs) = &mut j {
            pairs.insert(0, ("sample_every".to_string(), Json::U64(self.every)));
            pairs.insert(
                1,
                ("entries_seen".to_string(), Json::U64(self.entries_seen)),
            );
            pairs.insert(2, ("entries_sampled".to_string(), Json::U64(self.sampled)));
        }
        j
    }

    /// The sampled report as a human-readable table (the inner
    /// profiler's table under a sampling header).
    pub fn report_table(&self, top_n: usize) -> String {
        format!(
            "--- sampled profile: 1 in {} of {} block entries recorded ---\n{}",
            self.every,
            self.entries_seen,
            self.inner.report_table(top_n)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed `entries` executions of a two-block alternation and check
    /// that only every Nth entry lands in the inner profiler, whichever
    /// block it hits.
    #[test]
    fn samples_every_nth_entry_stratified() {
        let mut s = SamplingProfiler::new(3);
        let mut picked = 0;
        for k in 0..30u64 {
            let tag = if k % 2 == 0 { 0x1000 } else { 0x2000 };
            let hit = s.note_entry(tag, 0, false, k * 10, String::new);
            assert_eq!(hit, k % 3 == 0, "entry {k}");
            picked += hit as u64;
            s.note_li(3, 8, 1); // recorded only while sampling
            s.note_exit(ExitKind::Nba);
        }
        assert_eq!(picked, 10);
        assert_eq!(s.entries_seen(), 30);
        assert_eq!(s.sampled(), 10);
        let total_execs: u64 = s.profiler().profiles().iter().map(|p| p.executions).sum();
        let total_lis: u64 = s.profiler().profiles().iter().map(|p| p.lis).sum();
        assert_eq!(total_execs, 10);
        assert_eq!(total_lis, 10);
        // Picks land on entries 0,3,6,… — the 3-period is coprime with
        // the 2-block alternation, so both blocks get sampled.
        assert_eq!(s.profiler().profiles().len(), 2);
    }

    #[test]
    fn period_one_records_everything() {
        let mut s = SamplingProfiler::new(1);
        for k in 0..7u64 {
            assert!(s.note_entry(0x400, 1, k > 0, k, String::new));
            s.note_li(2, 4, 3);
            s.note_exit(ExitKind::Redirect);
        }
        let p = &s.profiler().profiles()[0];
        assert_eq!(p.executions, 7);
        assert_eq!(p.lis, 7);
        assert_eq!(p.cycles, 21);
        assert_eq!(p.chained, 6);
        assert_eq!(p.exit_redirect, 7);
    }

    #[test]
    fn unsampled_windows_record_nothing() {
        let mut s = SamplingProfiler::new(2);
        assert!(s.note_entry(0x100, 0, false, 0, String::new));
        s.note_exit(ExitKind::Nba);
        assert!(!s.note_entry(0x200, 0, false, 5, String::new));
        s.note_li(4, 4, 9); // must be dropped
        s.note_exit(ExitKind::Exception);
        assert_eq!(s.profiler().blocks(), 1);
        assert_eq!(s.profiler().profiles()[0].tag_addr, 0x100);
    }

    #[test]
    fn report_json_carries_sampling_params() {
        let mut s = SamplingProfiler::new(8);
        s.note_entry(0x2000, 0, false, 0, || "nop".into());
        s.note_li(1, 4, 2);
        s.note_exit(ExitKind::Nba);
        let j = s.report_json(10);
        assert_eq!(j.get("sample_every").and_then(Json::as_u64), Some(8));
        assert_eq!(j.get("entries_seen").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("entries_sampled").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("blocks").and_then(Json::as_u64), Some(1));
        assert!(s.report_table(10).contains("1 in 8"));
    }

    #[test]
    fn zero_period_clamps_to_one() {
        let s = SamplingProfiler::new(0);
        assert_eq!(s.every(), 1);
    }
}
