//! Always-on, burst-compatible telemetry: the host-side counter
//! registry the fast path folds into at burst exit, and the heartbeat
//! progress stream.
//!
//! Three observation tiers coexist in the simulator (DESIGN.md §12):
//!
//! 1. **`RunStats` / [`crate::Metrics`]** — *simulated* counters.
//!    Deterministic, serialised into snapshots, part of every report
//!    digest. Updating them is part of executing the machine.
//! 2. **[`Telemetry`]** (this module) — *host-side* counters about how
//!    the simulation was executed (bursts taken, chains crossed,
//!    work retired inside bursts). Never serialised, never part of
//!    `RunStats`, reset on resume; two runs of the same program may
//!    legitimately disagree here (e.g. stepped vs batched execution).
//! 3. **[`Heartbeat`]** (this module) — a cycle-budgeted JSONL progress
//!    stream. Every record is derived purely from *simulated* state at
//!    a *simulated* cycle stamp, so the stream is byte-identical
//!    whether the fast path was armed or not — only its existence is a
//!    host-side concern.
//!
//! Unlike the `Option<Box<Tracer>>` hooks, [`Telemetry`] is owned
//! unconditionally by the machine: the fast path accumulates per-burst
//! deltas in plain locals and folds them here once per burst, so the
//! hot loop carries no extra branch at all.

use crate::metrics::Histogram;
use dtsvliw_json::{Json, ToJson};
use std::io::{self, BufWriter, Write};

/// Per-burst delta accounting, accumulated in plain `u64`s inside
/// `run_vliw_burst` and folded into [`Telemetry`] exactly once at burst
/// exit (any exit: mode swap, halt, budget, watchdog, engine error).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BurstDelta {
    /// Machine cycles charged during the burst (VLIW + transition
    /// overhead + any recovery the burst's exits performed).
    pub cycles: u64,
    /// Sequential instructions retired during the burst.
    pub instructions: u64,
    /// Cycles charged to the VLIW attribution pool during the burst.
    pub vliw_cycles: u64,
    /// Long instructions dispatched.
    pub lis: u64,
    /// Operations issued (occupied slots) across those LIs.
    pub ops: u64,
    /// Slot capacity offered (`width × lis`).
    pub slots: u64,
    /// Block-chain transitions taken without leaving the burst.
    pub chained: u64,
    /// VLIW-cache hits observed during the burst (chain probes).
    pub vcache_hits: u64,
    /// VLIW-cache evictions observed during the burst.
    pub vcache_evictions: u64,
}

/// Host-side telemetry registry (tier 2 of the taxonomy above).
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Bursts entered by the batched fast path.
    pub bursts: u64,
    /// Block-chain transitions taken inside bursts.
    pub burst_chained: u64,
    /// Cycles charged inside bursts.
    pub burst_cycles: u64,
    /// Sequential instructions retired inside bursts.
    pub burst_instructions: u64,
    /// Cycles charged to the VLIW pool inside bursts.
    pub burst_vliw_cycles: u64,
    /// Long instructions dispatched inside bursts.
    pub burst_lis: u64,
    /// Operations issued inside bursts.
    pub burst_ops: u64,
    /// Slot capacity offered inside bursts.
    pub burst_slots: u64,
    /// VLIW-cache hits observed inside bursts.
    pub burst_vcache_hits: u64,
    /// VLIW-cache evictions observed inside bursts.
    pub burst_vcache_evictions: u64,
    /// Cycles per burst (log2 buckets: burst lengths are heavy-tailed).
    pub burst_len_cycles: Histogram,
    /// Chain transitions per burst.
    pub burst_chain_len: Histogram,
    /// Heartbeat records emitted.
    pub heartbeats: u64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry {
            bursts: 0,
            burst_chained: 0,
            burst_cycles: 0,
            burst_instructions: 0,
            burst_vliw_cycles: 0,
            burst_lis: 0,
            burst_ops: 0,
            burst_slots: 0,
            burst_vcache_hits: 0,
            burst_vcache_evictions: 0,
            burst_len_cycles: Histogram::log2(),
            burst_chain_len: Histogram::log2(),
            heartbeats: 0,
        }
    }
}

impl Telemetry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one finished burst's deltas in. Called once per burst, at
    /// burst exit — never from the hot loop.
    pub fn fold_burst(&mut self, d: BurstDelta) {
        self.bursts += 1;
        self.burst_chained += d.chained;
        self.burst_cycles += d.cycles;
        self.burst_instructions += d.instructions;
        self.burst_vliw_cycles += d.vliw_cycles;
        self.burst_lis += d.lis;
        self.burst_ops += d.ops;
        self.burst_slots += d.slots;
        self.burst_vcache_hits += d.vcache_hits;
        self.burst_vcache_evictions += d.vcache_evictions;
        self.burst_len_cycles.record(d.cycles);
        self.burst_chain_len.record(d.chained);
    }

    /// Issued operations over offered slot capacity inside bursts, 0.0
    /// when no burst ever ran.
    pub fn burst_slot_occupancy(&self) -> f64 {
        if self.burst_slots == 0 {
            0.0
        } else {
            self.burst_ops as f64 / self.burst_slots as f64
        }
    }
}

impl ToJson for Telemetry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("bursts", Json::U64(self.bursts)),
            ("burst_chained", Json::U64(self.burst_chained)),
            ("burst_cycles", Json::U64(self.burst_cycles)),
            ("burst_instructions", Json::U64(self.burst_instructions)),
            ("burst_vliw_cycles", Json::U64(self.burst_vliw_cycles)),
            ("burst_lis", Json::U64(self.burst_lis)),
            ("burst_ops", Json::U64(self.burst_ops)),
            ("burst_slots", Json::U64(self.burst_slots)),
            (
                "burst_slot_occupancy",
                Json::F64(self.burst_slot_occupancy()),
            ),
            ("burst_vcache_hits", Json::U64(self.burst_vcache_hits)),
            (
                "burst_vcache_evictions",
                Json::U64(self.burst_vcache_evictions),
            ),
            ("burst_len_cycles", self.burst_len_cycles.to_json()),
            ("burst_chain_len", self.burst_chain_len.to_json()),
            ("heartbeats", Json::U64(self.heartbeats)),
        ])
    }
}

/// One heartbeat progress record. Every field is *simulated* state — a
/// cycle-domain stamp and counters the machine would hold at that cycle
/// regardless of host execution strategy — so the stream is
/// byte-identical fast-path-on vs off. Wall-clock time is deliberately
/// absent; consumers (e.g. `dtsvliw_supervise`) derive rates from their
/// own clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatRecord {
    /// Monotonic record ordinal within the run, from 0.
    pub seq: u64,
    /// Machine cycle of emission.
    pub cycle: u64,
    /// Sequential instructions retired.
    pub instructions: u64,
    /// Cycle-attribution pools (they partition `cycle` exactly).
    pub vliw_cycles: u64,
    pub primary_cycles: u64,
    pub overhead_cycles: u64,
    pub degraded_cycles: u64,
    /// Engine-mode swaps so far.
    pub mode_swaps: u64,
    /// Fast-path bursts entered so far (host-side; see module docs —
    /// identical runs may disagree, but the field is indispensable for
    /// live "is the fast path firing?" monitoring).
    pub bursts: u64,
    /// Chain transitions inside bursts so far.
    pub chained: u64,
    /// Is the circuit breaker currently open (degraded execution)?
    pub breaker_open: bool,
    /// VLIW-cache hits so far.
    pub vcache_hits: u64,
    /// VLIW-cache evictions so far.
    pub vcache_evictions: u64,
}

impl HeartbeatRecord {
    /// Instructions per cycle so far, 0.0 at cycle 0.
    pub fn ipc(&self) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycle as f64
        }
    }
}

impl ToJson for HeartbeatRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::U64(self.seq)),
            ("cycle", Json::U64(self.cycle)),
            ("instructions", Json::U64(self.instructions)),
            ("ipc", Json::F64(self.ipc())),
            ("vliw_cycles", Json::U64(self.vliw_cycles)),
            ("primary_cycles", Json::U64(self.primary_cycles)),
            ("overhead_cycles", Json::U64(self.overhead_cycles)),
            ("degraded_cycles", Json::U64(self.degraded_cycles)),
            ("mode_swaps", Json::U64(self.mode_swaps)),
            ("bursts", Json::U64(self.bursts)),
            ("chained", Json::U64(self.chained)),
            ("breaker_open", Json::Bool(self.breaker_open)),
            ("vcache_hits", Json::U64(self.vcache_hits)),
            ("vcache_evictions", Json::U64(self.vcache_evictions)),
        ])
    }
}

/// The heartbeat emitter: appends one JSONL record roughly every
/// `every` cycles (the machine checks a single `u64` per step / per
/// long instruction, so arming it never disarms the fast path).
///
/// Like the [`crate::Tracer`] sink, a write error parks the error and
/// drops the writer — a full disk must not kill a long simulation.
pub struct Heartbeat {
    every: u64,
    out: Option<BufWriter<Box<dyn Write + Send>>>,
    seq: u64,
    err: Option<io::Error>,
}

impl std::fmt::Debug for Heartbeat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heartbeat")
            .field("every", &self.every)
            .field("seq", &self.seq)
            .field("has_out", &self.out.is_some())
            .finish()
    }
}

impl Heartbeat {
    /// A heartbeat emitting every `every` cycles (clamped to >= 1) to
    /// `out`; pass `None` to count beats without writing anywhere.
    pub fn new(every: u64, out: Option<Box<dyn Write + Send>>) -> Self {
        Heartbeat {
            every: every.max(1),
            out: out.map(BufWriter::new),
            seq: 0,
            err: None,
        }
    }

    /// The configured cycle cadence.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Records emitted so far.
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// Emit one record (the caller fills everything but `seq`).
    pub fn emit(&mut self, mut rec: HeartbeatRecord) {
        rec.seq = self.seq;
        self.seq += 1;
        if let Some(out) = &mut self.out {
            if let Err(e) = writeln!(out, "{}", rec.to_json()) {
                self.err.get_or_insert(e);
                self.out = None;
            }
        }
    }

    /// Flush and return the first write error, if any.
    pub fn finish(&mut self) -> io::Result<()> {
        if let Some(out) = &mut self.out {
            out.flush()?;
        }
        match self.err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn fold_burst_accumulates_and_histograms() {
        let mut t = Telemetry::new();
        t.fold_burst(BurstDelta {
            cycles: 100,
            instructions: 240,
            vliw_cycles: 90,
            lis: 80,
            ops: 240,
            slots: 640,
            chained: 3,
            vcache_hits: 4,
            vcache_evictions: 1,
        });
        t.fold_burst(BurstDelta {
            cycles: 10,
            instructions: 12,
            vliw_cycles: 10,
            lis: 10,
            ops: 12,
            slots: 80,
            chained: 0,
            vcache_hits: 1,
            vcache_evictions: 0,
        });
        assert_eq!(t.bursts, 2);
        assert_eq!(t.burst_chained, 3);
        assert_eq!(t.burst_cycles, 110);
        assert_eq!(t.burst_instructions, 252);
        assert_eq!(t.burst_lis, 90);
        assert_eq!(t.burst_len_cycles.count(), 2);
        assert_eq!(t.burst_len_cycles.sum(), 110);
        assert_eq!(t.burst_chain_len.max(), 3);
        assert!((t.burst_slot_occupancy() - 252.0 / 720.0).abs() < 1e-12);
    }

    #[test]
    fn telemetry_json_shape() {
        let mut t = Telemetry::new();
        t.fold_burst(BurstDelta {
            cycles: 7,
            chained: 2,
            ..BurstDelta::default()
        });
        t.heartbeats = 5;
        let j = t.to_json();
        assert_eq!(j.get("bursts").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("burst_chained").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("heartbeats").and_then(Json::as_u64), Some(5));
        assert!(j
            .get("burst_len_cycles")
            .and_then(|h| h.get("count"))
            .is_some());
        assert!(Json::parse(&j.to_string()).is_ok());
    }

    #[test]
    fn heartbeat_emits_jsonl_with_monotonic_seq() {
        let buf = Shared::default();
        let mut hb = Heartbeat::new(1000, Some(Box::new(buf.clone())));
        for (cycle, instrs) in [(1000u64, 1800u64), (2000, 3600)] {
            hb.emit(HeartbeatRecord {
                seq: 0,
                cycle,
                instructions: instrs,
                vliw_cycles: cycle - 10,
                primary_cycles: 5,
                overhead_cycles: 5,
                degraded_cycles: 0,
                mode_swaps: 2,
                bursts: 1,
                chained: 7,
                breaker_open: false,
                vcache_hits: 9,
                vcache_evictions: 0,
            });
        }
        hb.finish().unwrap();
        assert_eq!(hb.emitted(), 2);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let j = Json::parse(line).expect("each heartbeat line parses");
            assert_eq!(j.get("seq").and_then(Json::as_u64), Some(i as u64));
            assert!(j.get("cycle").and_then(Json::as_u64).unwrap() > 0);
            assert!(j.get("ipc").is_some());
            assert_eq!(j.get("breaker_open"), Some(&Json::Bool(false)));
        }
    }

    #[test]
    fn heartbeat_without_writer_still_counts() {
        let mut hb = Heartbeat::new(0, None); // cadence clamps to 1
        assert_eq!(hb.every(), 1);
        hb.emit(HeartbeatRecord {
            seq: 0,
            cycle: 1,
            instructions: 1,
            vliw_cycles: 0,
            primary_cycles: 1,
            overhead_cycles: 0,
            degraded_cycles: 0,
            mode_swaps: 0,
            bursts: 0,
            chained: 0,
            breaker_open: false,
            vcache_hits: 0,
            vcache_evictions: 0,
        });
        assert_eq!(hb.emitted(), 1);
        hb.finish().unwrap();
    }
}
