//! Hot-trace profiler: per-VLIW-cache-line execution accounting.
//!
//! The paper's evaluation is cycle attribution in the aggregate; the
//! [`BlockProfiler`] attributes the same cycles to *individual* scheduled
//! blocks, so a report can say which cache lines earn their keep: how
//! often each block ran, how many cycles it absorbed, how full its long
//! instructions were, how it was left (nba fall-through, redirect,
//! exception), whether entries chained block-to-block without leaving
//! VLIW mode, and whether the replacement policy evicted it while still
//! hot.
//!
//! The machine owns an optional profiler behind the same one-branch
//! `Option` pattern as the `Tracer`: every hook site costs a single
//! branch when profiling is disabled. Profiler state is deliberately
//! *not* serialised into machine snapshots — a resumed run starts with a
//! fresh (or no) profiler, so resuming can never double-count an
//! execution (reset-on-resume).
//!
//! The crate knows nothing about the ISA; the head-instruction
//! disassembly is rendered by the caller and handed in as a string the
//! first time a block is seen.

use dtsvliw_json::{Json, ToJson};

/// How control left a block at the end of one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// Fell through the last long instruction into the next-block
    /// address (the §3.4 nba store).
    Nba,
    /// A branch left its recorded direction: execution redirected out of
    /// the block mid-trace (§3.5).
    Redirect,
    /// An exception (aliasing, structural fault, detected divergence)
    /// rolled the block back to its entry checkpoint.
    Exception,
}

/// Everything the profiler knows about one scheduled block
/// (one VLIW Cache line, keyed by `(tag_addr, entry_cwp)`).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockProfile {
    /// First-seen ordinal: a deterministic line id, assigned in the
    /// order blocks first executed.
    pub ordinal: u64,
    /// Cache tag: address of the first trace instruction of the block.
    pub tag_addr: u32,
    /// Window pointer at block entry (part of the cache key).
    pub entry_cwp: u8,
    /// Disassembly of the block's head instruction (rendered by the
    /// caller; empty until the block's first recorded entry).
    pub head: String,
    /// Times the VLIW Engine entered the block.
    pub executions: u64,
    /// Cycles spent executing the block's long instructions (including
    /// data-cache stalls charged while inside it).
    pub cycles: u64,
    /// Long instructions executed across all entries.
    pub lis: u64,
    /// Operations issued (occupied slots) across all entries.
    pub ops: u64,
    /// Slot capacity offered: `width × long instructions executed`.
    pub slots: u64,
    /// Entries that chained block-to-block without leaving VLIW mode
    /// (the §3.4 nba / redirect chain path).
    pub chained: u64,
    /// Exits by fall-through into the nba.
    pub exit_nba: u64,
    /// Exits by a branch leaving its recorded direction.
    pub exit_redirect: u64,
    /// Exits by exception / checkpoint rollback.
    pub exit_exception: u64,
    /// Machine cycle of the most recent entry.
    pub last_entry_cycle: u64,
    /// Times the block was evicted within the hot window of its last
    /// execution (a replacement-policy casualty, not dead code).
    pub evictions_while_hot: u64,
    /// Total evictions of this tag observed.
    pub evictions: u64,
}

impl BlockProfile {
    fn new(ordinal: u64, tag_addr: u32, entry_cwp: u8) -> Self {
        BlockProfile {
            ordinal,
            tag_addr,
            entry_cwp,
            head: String::new(),
            executions: 0,
            cycles: 0,
            lis: 0,
            ops: 0,
            slots: 0,
            chained: 0,
            exit_nba: 0,
            exit_redirect: 0,
            exit_exception: 0,
            last_entry_cycle: 0,
            evictions_while_hot: 0,
            evictions: 0,
        }
    }

    /// Issued operations over offered slot capacity, 0.0 when the block
    /// never executed.
    pub fn slot_occupancy(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.ops as f64 / self.slots as f64
        }
    }
}

impl ToJson for BlockProfile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("line", Json::U64(self.ordinal)),
            ("tag", Json::U64(self.tag_addr as u64)),
            ("cwp", Json::U64(self.entry_cwp as u64)),
            ("head", Json::Str(self.head.clone())),
            ("executions", Json::U64(self.executions)),
            ("cycles", Json::U64(self.cycles)),
            ("lis", Json::U64(self.lis)),
            ("ops", Json::U64(self.ops)),
            ("slot_occupancy", Json::F64(self.slot_occupancy())),
            ("chained", Json::U64(self.chained)),
            ("exit_nba", Json::U64(self.exit_nba)),
            ("exit_redirect", Json::U64(self.exit_redirect)),
            ("exit_exception", Json::U64(self.exit_exception)),
            ("evictions", Json::U64(self.evictions)),
            ("evictions_while_hot", Json::U64(self.evictions_while_hot)),
        ])
    }
}

/// Default hot window for eviction-while-hot tracking, in cycles: an
/// eviction counts as "while hot" when the block last entered execution
/// within this many cycles of the eviction.
pub const DEFAULT_HOT_WINDOW: u64 = 10_000;

/// Per-block execution profiler (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct BlockProfiler {
    profiles: Vec<BlockProfile>,
    /// `(tag, cwp) → index` into `profiles`. Linear maps would be O(n)
    /// per long instruction; this stays a sorted Vec searched by binary
    /// search, which keeps iteration order deterministic without a
    /// hash map.
    index: Vec<((u32, u8), usize)>,
    /// One-entry cache: consecutive long instructions of the same block
    /// skip the lookup entirely.
    last: Option<((u32, u8), usize)>,
    hot_window: u64,
}

impl BlockProfiler {
    /// A fresh profiler with the default eviction-hot window.
    pub fn new() -> Self {
        Self::with_hot_window(DEFAULT_HOT_WINDOW)
    }

    /// A fresh profiler counting an eviction as "while hot" when it
    /// lands within `hot_window` cycles of the block's last entry.
    pub fn with_hot_window(hot_window: u64) -> Self {
        BlockProfiler {
            profiles: Vec::new(),
            index: Vec::new(),
            last: None,
            hot_window,
        }
    }

    fn slot(&mut self, tag: u32, cwp: u8) -> &mut BlockProfile {
        let key = (tag, cwp);
        if let Some((k, i)) = self.last {
            if k == key {
                return &mut self.profiles[i];
            }
        }
        let i = match self.index.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(pos) => self.index[pos].1,
            Err(pos) => {
                let i = self.profiles.len();
                self.profiles.push(BlockProfile::new(i as u64, tag, cwp));
                self.index.insert(pos, (key, i));
                i
            }
        };
        self.last = Some((key, i));
        &mut self.profiles[i]
    }

    /// Record a block entry at `cycle`. `chained` marks entries that
    /// arrived block-to-block without leaving VLIW mode. `head` renders
    /// the head-instruction disassembly; it is only invoked the first
    /// time the block is seen.
    pub fn note_entry(
        &mut self,
        tag: u32,
        cwp: u8,
        chained: bool,
        cycle: u64,
        head: impl FnOnce() -> String,
    ) {
        let p = self.slot(tag, cwp);
        if p.head.is_empty() {
            p.head = head();
        }
        p.executions += 1;
        p.chained += chained as u64;
        p.last_entry_cycle = cycle;
    }

    /// Record one executed long instruction: `ops` occupied slots of
    /// `width` offered, absorbing `cycles` machine cycles (1 plus any
    /// data-cache stall).
    pub fn note_li(&mut self, tag: u32, cwp: u8, ops: u32, width: u32, cycles: u64) {
        let p = self.slot(tag, cwp);
        p.lis += 1;
        p.ops += ops as u64;
        p.slots += width as u64;
        p.cycles += cycles;
    }

    /// Record how control left the block.
    pub fn note_exit(&mut self, tag: u32, cwp: u8, kind: ExitKind) {
        let p = self.slot(tag, cwp);
        match kind {
            ExitKind::Nba => p.exit_nba += 1,
            ExitKind::Redirect => p.exit_redirect += 1,
            ExitKind::Exception => p.exit_exception += 1,
        }
    }

    /// Record an eviction of `(tag, cwp)` at `cycle`. Only blocks the
    /// profiler has already seen are interesting; an eviction of a
    /// never-executed block is recorded all the same (executions 0).
    pub fn note_evict(&mut self, tag: u32, cwp: u8, cycle: u64) {
        let hot_window = self.hot_window;
        let p = self.slot(tag, cwp);
        p.evictions += 1;
        if p.executions > 0 && cycle.saturating_sub(p.last_entry_cycle) <= hot_window {
            p.evictions_while_hot += 1;
        }
    }

    /// Number of distinct blocks profiled.
    pub fn blocks(&self) -> usize {
        self.profiles.len()
    }

    /// Every profile, in first-seen order.
    pub fn profiles(&self) -> &[BlockProfile] {
        &self.profiles
    }

    /// The `top_n` hottest blocks: sorted by cycles descending, ties
    /// broken by executions descending then first-seen ordinal — a total
    /// order, so the report is deterministic.
    pub fn hottest(&self, top_n: usize) -> Vec<&BlockProfile> {
        let mut v: Vec<&BlockProfile> = self.profiles.iter().collect();
        v.sort_by(|a, b| {
            b.cycles
                .cmp(&a.cycles)
                .then(b.executions.cmp(&a.executions))
                .then(a.ordinal.cmp(&b.ordinal))
        });
        v.truncate(top_n);
        v
    }

    /// FNV-1a digest over the hottest `top_n` blocks' identity and
    /// counts — a compact fingerprint benchmark reports can compare to
    /// spot hot-path shifts without storing full tables.
    pub fn hot_digest(&self, top_n: usize) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut feed = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for p in self.hottest(top_n) {
            feed(p.tag_addr as u64);
            feed(p.entry_cwp as u64);
            feed(p.executions);
            feed(p.cycles);
            feed(p.ops);
        }
        h
    }

    /// The report as JSON: block count, total profiled cycles, and the
    /// `top_n` hottest blocks (see [`BlockProfile::to_json`]).
    pub fn report_json(&self, top_n: usize) -> Json {
        let total: u64 = self.profiles.iter().map(|p| p.cycles).sum();
        Json::obj([
            ("blocks", Json::U64(self.profiles.len() as u64)),
            ("profiled_cycles", Json::U64(total)),
            ("hot_digest", Json::U64(self.hot_digest(top_n))),
            (
                "hot",
                Json::Arr(self.hottest(top_n).iter().map(|p| p.to_json()).collect()),
            ),
        ])
    }

    /// The report as a human-readable table of the `top_n` hottest
    /// blocks.
    pub fn report_table(&self, top_n: usize) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let total: u64 = self.profiles.iter().map(|p| p.cycles).sum();
        let _ = writeln!(
            s,
            "--- hot blocks: top {} of {} ({} profiled cycles) ---",
            top_n.min(self.profiles.len()),
            self.profiles.len(),
            total
        );
        let _ = writeln!(
            s,
            "{:>5} {:>10} {:>10} {:>12} {:>6} {:>22} {:>6}  head",
            "line", "entry pc", "execs", "cycles", "occ%", "exits nba/redir/exc", "hot-ev"
        );
        for p in self.hottest(top_n) {
            let _ = writeln!(
                s,
                "{:>5} {:>#10x} {:>10} {:>12} {:>5.1} {:>22} {:>6}  {}",
                p.ordinal,
                p.tag_addr,
                p.executions,
                p.cycles,
                100.0 * p.slot_occupancy(),
                format!("{}/{}/{}", p.exit_nba, p.exit_redirect, p.exit_exception),
                p.evictions_while_hot,
                p.head,
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_lis_and_exits_accumulate() {
        let mut p = BlockProfiler::new();
        p.note_entry(0x2000, 0, false, 100, || "add %o0, %o1, %o0".into());
        p.note_li(0x2000, 0, 3, 4, 1);
        p.note_li(0x2000, 0, 2, 4, 5);
        p.note_exit(0x2000, 0, ExitKind::Nba);
        p.note_entry(0x2000, 0, true, 200, || unreachable!("head cached"));
        p.note_li(0x2000, 0, 4, 4, 1);
        p.note_exit(0x2000, 0, ExitKind::Redirect);

        assert_eq!(p.blocks(), 1);
        let b = &p.profiles()[0];
        assert_eq!(b.head, "add %o0, %o1, %o0");
        assert_eq!(b.executions, 2);
        assert_eq!(b.chained, 1);
        assert_eq!(b.lis, 3);
        assert_eq!(b.ops, 9);
        assert_eq!(b.slots, 12);
        assert_eq!(b.cycles, 7);
        assert_eq!(b.exit_nba, 1);
        assert_eq!(b.exit_redirect, 1);
        assert_eq!(b.exit_exception, 0);
        assert!((b.slot_occupancy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hottest_is_deterministically_ordered() {
        let mut p = BlockProfiler::new();
        for (tag, cyc) in [(0x100u32, 5u64), (0x200, 9), (0x300, 5)] {
            p.note_entry(tag, 0, false, 0, String::new);
            p.note_li(tag, 0, 1, 4, cyc);
        }
        let hot = p.hottest(3);
        // 0x200 has the most cycles; 0x100 and 0x300 tie on cycles and
        // executions, so first-seen ordinal breaks the tie.
        assert_eq!(
            hot.iter().map(|b| b.tag_addr).collect::<Vec<_>>(),
            vec![0x200, 0x100, 0x300]
        );
        assert_eq!(p.hottest(1).len(), 1);
    }

    #[test]
    fn eviction_hot_window() {
        let mut p = BlockProfiler::with_hot_window(100);
        p.note_entry(0x2000, 0, false, 1000, String::new);
        p.note_evict(0x2000, 0, 1050); // inside the window
        p.note_evict(0x2000, 0, 2000); // far outside
        p.note_evict(0x4000, 0, 2000); // never executed
        let b = &p.profiles()[0];
        assert_eq!(b.evictions, 2);
        assert_eq!(b.evictions_while_hot, 1);
        assert_eq!(p.profiles()[1].evictions_while_hot, 0);
    }

    #[test]
    fn digest_tracks_hot_set_changes() {
        let mut a = BlockProfiler::new();
        a.note_entry(0x100, 0, false, 0, String::new);
        a.note_li(0x100, 0, 2, 4, 3);
        let mut b = a.clone();
        assert_eq!(a.hot_digest(5), b.hot_digest(5));
        b.note_li(0x100, 0, 2, 4, 3);
        assert_ne!(a.hot_digest(5), b.hot_digest(5));
    }

    #[test]
    fn report_json_shape() {
        use dtsvliw_json::Json;
        let mut p = BlockProfiler::new();
        p.note_entry(0x2000, 1, false, 0, || "ld [%o0], %o1".into());
        p.note_li(0x2000, 1, 2, 8, 4);
        p.note_exit(0x2000, 1, ExitKind::Exception);
        let j = p.report_json(10);
        assert_eq!(j.get("blocks").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("profiled_cycles").and_then(Json::as_u64), Some(4));
        let hot = j.get("hot").and_then(Json::as_arr).unwrap();
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].get("tag").and_then(Json::as_u64), Some(0x2000));
        assert_eq!(hot[0].get("exit_exception").and_then(Json::as_u64), Some(1));
        // The rendered report parses back.
        assert!(Json::parse(&j.to_string_pretty()).is_ok());
        // And the table mentions the head disassembly.
        assert!(p.report_table(10).contains("ld [%o0], %o1"));
    }
}
