//! Metrics registry: fixed-bucket histograms and counters that ride
//! along inside `RunStats` (everything here is `Copy` so `RunStats`
//! stays `Copy`).

use dtsvliw_json::{Json, ToJson};

/// Number of buckets in every [`Histogram`]. The last bucket is an
/// overflow catch-all.
pub const HIST_BUCKETS: usize = 16;

/// How values map onto the 16 buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketScale {
    /// Bucket `i` covers `[i*step, (i+1)*step)`; the final bucket also
    /// absorbs everything above.
    Linear {
        /// Bucket width (values per bucket), >= 1.
        step: u64,
    },
    /// Bucket 0 holds value 0; bucket `i` (1..) covers
    /// `[2^(i-1), 2^i)`; the final bucket absorbs the rest. Suits
    /// heavy-tailed cycle counts (swap gaps, block lifetimes).
    Log2,
}

impl BucketScale {
    fn label(self) -> String {
        match self {
            BucketScale::Linear { step } => format!("linear:{step}"),
            BucketScale::Log2 => "log2".to_string(),
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        if s == "log2" {
            return Some(BucketScale::Log2);
        }
        let step = s.strip_prefix("linear:")?.parse().ok()?;
        Some(BucketScale::Linear { step })
    }
}

/// A fixed-size histogram of `u64` samples with running count/sum/max.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    scale: BucketScale,
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Linear histogram with the given bucket width (clamped to >= 1).
    pub fn linear(step: u64) -> Self {
        Histogram {
            scale: BucketScale::Linear { step: step.max(1) },
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Power-of-two histogram.
    pub fn log2() -> Self {
        Histogram {
            scale: BucketScale::Log2,
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(&self, v: u64) -> usize {
        let idx = match self.scale {
            BucketScale::Linear { step } => (v / step) as usize,
            BucketScale::Log2 => {
                if v == 0 {
                    0
                } else {
                    // floor(log2(v)) + 1: value 1 → bucket 1, 2..3 → 2, …
                    (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
                }
            }
        };
        idx.min(HIST_BUCKETS - 1)
    }

    /// The half-open value range `[lo, hi)` of bucket `i`; `hi` is
    /// `None` for the overflow bucket.
    pub fn bucket_range(&self, i: usize) -> (u64, Option<u64>) {
        assert!(i < HIST_BUCKETS);
        match self.scale {
            BucketScale::Linear { step } => {
                let lo = i as u64 * step;
                if i == HIST_BUCKETS - 1 {
                    (lo, None)
                } else {
                    (lo, Some(lo + step))
                }
            }
            BucketScale::Log2 => match i {
                0 => (0, Some(1)),
                _ if i == HIST_BUCKETS - 1 => (1 << (i - 1), None),
                _ => (1 << (i - 1), Some(1 << i)),
            },
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let i = self.bucket_index(v);
        self.buckets[i] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupancy of bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Approximate `q`-quantile (`0.0 < q <= 1.0`) by bucket upper
    /// bound: the inclusive upper edge of the first bucket whose
    /// cumulative count reaches `ceil(q × count)`, clamped to the
    /// largest sample actually seen (so a lone sample in a wide bucket
    /// does not overstate the tail). 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for i in 0..HIST_BUCKETS {
            seen += self.buckets[i];
            if seen >= rank {
                let upper = match self.bucket_range(i) {
                    (_, Some(hi)) => hi - 1,
                    (_, None) => self.max,
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// The bucketing scale.
    pub fn scale(&self) -> BucketScale {
        self.scale
    }

    /// Parse a histogram back from its [`ToJson`] form (used by
    /// round-trip tests and external tooling).
    pub fn from_json(j: &Json) -> Option<Self> {
        let scale = BucketScale::from_label(j.get("scale")?.as_str()?)?;
        let mut h = Histogram {
            scale,
            buckets: [0; HIST_BUCKETS],
            count: j.get("count")?.as_u64()?,
            sum: j.get("sum")?.as_u64()?,
            max: j.get("max")?.as_u64()?,
        };
        let arr = j.get("buckets")?.as_arr()?;
        if arr.len() != HIST_BUCKETS {
            return None;
        }
        for (slot, v) in h.buckets.iter_mut().zip(arr) {
            *slot = v.as_u64()?;
        }
        Some(h)
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scale", Json::Str(self.scale.label())),
            ("count", Json::U64(self.count)),
            ("sum", Json::U64(self.sum)),
            ("max", Json::U64(self.max)),
            ("mean", Json::F64(self.mean())),
            // Derived from the buckets (bucket-upper-bound
            // approximation); deliberately not read back by `from_json`.
            ("p50", Json::U64(self.percentile(0.50))),
            ("p90", Json::U64(self.percentile(0.90))),
            ("p99", Json::U64(self.percentile(0.99))),
            ("p999", Json::U64(self.percentile(0.999))),
            (
                "buckets",
                Json::Arr(self.buckets.iter().map(|b| Json::U64(*b)).collect()),
            ),
        ])
    }
}

/// The simulator's metric registry. Lives inside `RunStats`, updated
/// unconditionally (cheap array increments), serialised with the rest
/// of the stats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Occupied-slot count per executed long instruction.
    pub li_slot_occupancy: Histogram,
    /// Long instructions per installed block (block height).
    pub block_height: Histogram,
    /// Occupied slots per installed block (block width x height fill).
    pub block_filled: Histogram,
    /// Cycles between consecutive engine-mode swaps.
    pub swap_gap_cycles: Histogram,
    /// VLIW-cache residence time (cycles) of evicted blocks.
    pub evicted_block_lifetime: Histogram,
    /// Total trace events emitted (0 when tracing is disabled).
    pub trace_events: u64,
    /// Trace events lost to flight-recorder wraparound.
    pub trace_dropped: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            li_slot_occupancy: Histogram::linear(1),
            block_height: Histogram::linear(1),
            block_filled: Histogram::linear(4),
            swap_gap_cycles: Histogram::log2(),
            evicted_block_lifetime: Histogram::log2(),
            trace_events: 0,
            trace_dropped: 0,
        }
    }
}

impl Metrics {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse back from the [`ToJson`] form (machine snapshots).
    pub fn from_json(j: &Json) -> Option<Self> {
        Some(Metrics {
            li_slot_occupancy: Histogram::from_json(j.get("li_slot_occupancy")?)?,
            block_height: Histogram::from_json(j.get("block_height")?)?,
            block_filled: Histogram::from_json(j.get("block_filled")?)?,
            swap_gap_cycles: Histogram::from_json(j.get("swap_gap_cycles")?)?,
            evicted_block_lifetime: Histogram::from_json(j.get("evicted_block_lifetime")?)?,
            trace_events: j.get("trace_events")?.as_u64()?,
            trace_dropped: j.get("trace_dropped")?.as_u64()?,
        })
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("li_slot_occupancy", self.li_slot_occupancy.to_json()),
            ("block_height", self.block_height.to_json()),
            ("block_filled", self.block_filled.to_json()),
            ("swap_gap_cycles", self.swap_gap_cycles.to_json()),
            (
                "evicted_block_lifetime",
                self.evicted_block_lifetime.to_json(),
            ),
            ("trace_events", Json::U64(self.trace_events)),
            ("trace_dropped", Json::U64(self.trace_dropped)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bucket_boundaries() {
        let h = Histogram::linear(4);
        assert_eq!(h.bucket_index(0), 0);
        assert_eq!(h.bucket_index(3), 0);
        assert_eq!(h.bucket_index(4), 1);
        assert_eq!(h.bucket_index(7), 1);
        assert_eq!(h.bucket_index(8), 2);
        // Overflow clamps into the last bucket.
        assert_eq!(h.bucket_index(4 * 15), 15);
        assert_eq!(h.bucket_index(u64::MAX), 15);
        assert_eq!(h.bucket_range(0), (0, Some(4)));
        assert_eq!(h.bucket_range(15), (60, None));
    }

    #[test]
    fn log2_bucket_boundaries() {
        let h = Histogram::log2();
        assert_eq!(h.bucket_index(0), 0);
        assert_eq!(h.bucket_index(1), 1);
        assert_eq!(h.bucket_index(2), 2);
        assert_eq!(h.bucket_index(3), 2);
        assert_eq!(h.bucket_index(4), 3);
        assert_eq!(h.bucket_index(1 << 13), 14);
        assert_eq!(h.bucket_index((1 << 14) - 1), 14);
        assert_eq!(h.bucket_index(1 << 14), 15);
        assert_eq!(h.bucket_index(u64::MAX), 15);
        assert_eq!(h.bucket_range(0), (0, Some(1)));
        assert_eq!(h.bucket_range(1), (1, Some(2)));
        assert_eq!(h.bucket_range(14), (1 << 13, Some(1 << 14)));
        assert_eq!(h.bucket_range(15), (1 << 14, None));
    }

    #[test]
    fn bucket_ranges_tile_and_match_index() {
        for h in [Histogram::linear(3), Histogram::log2()] {
            for i in 0..HIST_BUCKETS {
                let (lo, hi) = h.bucket_range(i);
                assert_eq!(h.bucket_index(lo), i, "lo of bucket {i}");
                if let Some(hi) = hi {
                    assert_eq!(h.bucket_index(hi - 1), i, "hi-1 of bucket {i}");
                    // Ranges tile: next bucket starts where this ends.
                    if i + 1 < HIST_BUCKETS {
                        assert_eq!(h.bucket_range(i + 1).0, hi);
                    }
                }
            }
        }
    }

    #[test]
    fn record_tracks_count_sum_max_mean() {
        let mut h = Histogram::linear(2);
        assert_eq!(h.mean(), 0.0);
        for v in [1, 2, 3, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 16);
        assert_eq!(h.max(), 10);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.bucket(0), 1); // 1
        assert_eq!(h.bucket(1), 2); // 2, 3
        assert_eq!(h.bucket(5), 1); // 10
    }

    #[test]
    fn percentiles_by_bucket_upper_bound() {
        let mut h = Histogram::linear(1);
        assert_eq!(h.percentile(0.5), 0); // empty
        for v in 1..=10 {
            h.record(v);
        }
        // Step-1 buckets make the approximation exact here.
        assert_eq!(h.percentile(0.50), 5);
        assert_eq!(h.percentile(0.90), 9);
        assert_eq!(h.percentile(0.99), 10);
        assert_eq!(h.percentile(0.999), 10);
        assert_eq!(h.percentile(1.0), 10);

        // Coarse buckets: the answer is the bucket's inclusive upper
        // edge, clamped to the observed max.
        let mut c = Histogram::linear(10);
        c.record(3);
        assert_eq!(c.percentile(0.5), 3); // upper edge 9, clamped to max
        c.record(14);
        assert_eq!(c.percentile(0.99), 14);

        // Overflow bucket reports the observed max.
        let mut o = Histogram::log2();
        o.record(1 << 20);
        assert_eq!(o.percentile(0.5), 1 << 20);

        // p99.9 only leaves the p99 bucket once the tail has weight:
        // 1000 small samples put rank 1000 in the last occupied bucket.
        let mut t = Histogram::linear(1);
        for _ in 0..999 {
            t.record(1);
        }
        t.record(12);
        assert_eq!(t.percentile(0.99), 1);
        assert_eq!(t.percentile(0.999), 1);
        t.record(12); // 1001 samples: rank ceil(0.999*1001)=1000 still 1…
        for _ in 0..8 {
            t.record(12);
        }
        // 999 ones + 10 twelves = 1009 samples; rank ceil(.999*1009)=1008 → bucket 12.
        assert_eq!(t.percentile(0.999), 12);
    }

    #[test]
    fn percentiles_ride_in_json_without_breaking_round_trip() {
        let mut h = Histogram::linear(2);
        for v in [1, 2, 3, 10] {
            h.record(v);
        }
        let j = h.to_json();
        assert_eq!(j.get("p50").and_then(Json::as_u64), Some(h.percentile(0.5)));
        assert_eq!(j.get("p90").and_then(Json::as_u64), Some(h.percentile(0.9)));
        assert_eq!(
            j.get("p99").and_then(Json::as_u64),
            Some(h.percentile(0.99))
        );
        assert_eq!(
            j.get("p999").and_then(Json::as_u64),
            Some(h.percentile(0.999))
        );
        let back = Histogram::from_json(&Json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn json_round_trip() {
        let mut h = Histogram::log2();
        for v in [0, 1, 5, 5, 1000, u64::MAX] {
            h.record(v);
        }
        let text = h.to_json().to_string();
        let parsed = Json::parse(&text).expect("parse back");
        let h2 = Histogram::from_json(&parsed).expect("histogram from json");
        assert_eq!(h, h2);

        let mut lin = Histogram::linear(7);
        lin.record(13);
        let lin2 = Histogram::from_json(&Json::parse(&lin.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(lin, lin2);
    }

    #[test]
    fn metrics_round_trip() {
        let mut m = Metrics::new();
        m.block_height.record(6);
        m.swap_gap_cycles.record(900);
        m.trace_events = 4;
        m.trace_dropped = 1;
        let back = Metrics::from_json(&Json::parse(&m.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(m, back);
        assert!(Metrics::from_json(&Json::Null).is_none());
    }

    #[test]
    fn metrics_serialise() {
        let mut m = Metrics::new();
        m.li_slot_occupancy.record(3);
        m.trace_events = 9;
        let j = m.to_json();
        assert_eq!(
            j.get("li_slot_occupancy")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(j.get("trace_events").and_then(Json::as_u64), Some(9));
    }
}
