//! Pluggable trace sinks.
//!
//! A sink receives every [`Stamped`] event in emission order and owns
//! its output writer. Three formats ship with the simulator:
//!
//! * [`TextSink`] — one human-readable line per event.
//! * [`JsonlSink`] — one JSON object per line (`{"cycle":…, "kind":…, …}`).
//! * [`PerfettoSink`] — Chrome trace-event JSON: engine-mode spans on
//!   track 0 (their durations sum exactly to the run's total cycles)
//!   and instant events on per-component tracks. Load the file at
//!   <https://ui.perfetto.dev> or `chrome://tracing`.

use crate::event::{Stamped, TraceEvent, TRACK_NAMES};
use dtsvliw_json::{Json, ToJson};
use std::io::{self, BufWriter, Write};
use std::str::FromStr;

/// Output format selector (`--trace-format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// Human-readable text lines.
    Text,
    /// One JSON object per line.
    #[default]
    Jsonl,
    /// Chrome trace-event JSON for Perfetto.
    Perfetto,
}

impl TraceFormat {
    /// The `--trace-format` spelling.
    pub fn label(self) -> &'static str {
        match self {
            TraceFormat::Text => "text",
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Perfetto => "perfetto",
        }
    }
}

impl FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(TraceFormat::Text),
            "jsonl" => Ok(TraceFormat::Jsonl),
            "perfetto" => Ok(TraceFormat::Perfetto),
            other => Err(format!(
                "unknown trace format `{other}` (expected jsonl|perfetto|text)"
            )),
        }
    }
}

/// A streaming consumer of trace events.
pub trait EventSink: Send {
    /// Consume one event. Events arrive in nondecreasing cycle order.
    fn record(&mut self, ev: &Stamped) -> io::Result<()>;

    /// Terminate the output document and flush. `final_cycle` is the
    /// machine's total cycle count at shutdown.
    fn finish(&mut self, final_cycle: u64) -> io::Result<()>;
}

/// Build the sink for `format` writing to `out`.
pub fn sink_to_writer(
    format: TraceFormat,
    out: Box<dyn Write + Send>,
) -> Box<dyn EventSink + Send> {
    match format {
        TraceFormat::Text => Box::new(TextSink::new(out)),
        TraceFormat::Jsonl => Box::new(JsonlSink::new(out)),
        TraceFormat::Perfetto => Box::new(PerfettoSink::new(out)),
    }
}

/// One human-readable line per event.
pub struct TextSink {
    out: BufWriter<Box<dyn Write + Send>>,
}

impl TextSink {
    /// Text sink writing to `out`.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        TextSink {
            out: BufWriter::new(out),
        }
    }
}

impl EventSink for TextSink {
    fn record(&mut self, ev: &Stamped) -> io::Result<()> {
        writeln!(self.out, "{ev}")
    }

    fn finish(&mut self, final_cycle: u64) -> io::Result<()> {
        writeln!(self.out, "[{final_cycle:>12}] end_of_trace")?;
        self.out.flush()
    }
}

/// One JSON object per line.
pub struct JsonlSink {
    out: BufWriter<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// JSONL sink writing to `out`.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: BufWriter::new(out),
        }
    }
}

impl EventSink for JsonlSink {
    fn record(&mut self, ev: &Stamped) -> io::Result<()> {
        writeln!(self.out, "{}", ev.to_json())
    }

    fn finish(&mut self, _final_cycle: u64) -> io::Result<()> {
        self.out.flush()
    }
}

/// Chrome trace-event JSON (the array form) for Perfetto.
///
/// Layout: one process (`pid` 1, named after the simulator), five
/// threads. Thread 0 carries `ph:"X"` *complete* spans, one per
/// engine-mode interval, named `primary`/`vliw`; because each
/// [`TraceEvent::ModeSwap`] closes the previous span and
/// [`EventSink::finish`] closes the last one at the final cycle, span
/// durations telescope to exactly the run's total cycles. The other
/// threads carry `ph:"i"` instants. Timestamps are machine cycles
/// (1 "µs" in the viewer == 1 cycle).
pub struct PerfettoSink {
    out: BufWriter<Box<dyn Write + Send>>,
    /// Open engine-mode span: (name, start cycle).
    open_span: Option<(&'static str, u64)>,
    wrote_any: bool,
    started: bool,
}

impl PerfettoSink {
    /// Perfetto sink writing to `out`.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        PerfettoSink {
            out: BufWriter::new(out),
            open_span: None,
            wrote_any: false,
            started: false,
        }
    }

    fn emit(&mut self, record: Json) -> io::Result<()> {
        if !self.started {
            self.start()?;
        }
        if self.wrote_any {
            self.out.write_all(b",\n")?;
        }
        self.wrote_any = true;
        write!(self.out, "{record}")
    }

    fn start(&mut self) -> io::Result<()> {
        self.started = true;
        self.out.write_all(b"[\n")?;
        // Process + thread name metadata so Perfetto labels the tracks.
        let mut meta = vec![Json::obj([
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::U64(1)),
            ("args", Json::obj([("name", Json::Str("dtsvliw".into()))])),
        ])];
        for (tid, name) in TRACK_NAMES.iter().enumerate() {
            meta.push(Json::obj([
                ("name", Json::Str("thread_name".into())),
                ("ph", Json::Str("M".into())),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(tid as u64)),
                ("args", Json::obj([("name", Json::Str((*name).into()))])),
            ]));
        }
        for m in meta {
            if self.wrote_any {
                self.out.write_all(b",\n")?;
            }
            self.wrote_any = true;
            write!(self.out, "{m}")?;
        }
        Ok(())
    }

    fn close_span(&mut self, end_cycle: u64) -> io::Result<()> {
        if let Some((name, start)) = self.open_span.take() {
            let dur = end_cycle.saturating_sub(start);
            let span = Json::obj([
                ("name", Json::Str(name.into())),
                ("ph", Json::Str("X".into())),
                ("ts", Json::U64(start)),
                ("dur", Json::U64(dur)),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(0)),
            ]);
            self.emit(span)?;
        }
        Ok(())
    }
}

impl EventSink for PerfettoSink {
    fn record(&mut self, ev: &Stamped) -> io::Result<()> {
        match ev.event {
            TraceEvent::ModeSwap { to, .. } => {
                self.close_span(ev.cycle)?;
                self.open_span = Some((to.label(), ev.cycle));
                Ok(())
            }
            // Progress counters become `ph:"C"` counter-track samples:
            // one track per quantity, plus a stacked cycles-by-pool
            // track, so heartbeat-cadence telemetry lines up with the
            // spans and instants on the same cycle timeline.
            TraceEvent::Counters {
                instructions,
                ipc_milli,
                vliw_cycles,
                primary_cycles,
                overhead_cycles,
                degraded_cycles,
            } => {
                for (name, args) in [
                    (
                        "instructions",
                        Json::obj([("value", Json::U64(instructions))]),
                    ),
                    ("ipc (milli)", Json::obj([("value", Json::U64(ipc_milli))])),
                    (
                        "cycles by pool",
                        Json::obj([
                            ("vliw", Json::U64(vliw_cycles)),
                            ("primary", Json::U64(primary_cycles)),
                            ("overhead", Json::U64(overhead_cycles)),
                            ("degraded", Json::U64(degraded_cycles)),
                        ]),
                    ),
                ] {
                    let counter = Json::obj([
                        ("name", Json::Str(name.into())),
                        ("ph", Json::Str("C".into())),
                        ("ts", Json::U64(ev.cycle)),
                        ("pid", Json::U64(1)),
                        ("tid", Json::U64(ev.event.track() as u64)),
                        ("args", args),
                    ]);
                    self.emit(counter)?;
                }
                Ok(())
            }
            other => {
                let inst = Json::obj([
                    ("name", Json::Str(other.kind().into())),
                    ("ph", Json::Str("i".into())),
                    ("ts", Json::U64(ev.cycle)),
                    ("pid", Json::U64(1)),
                    ("tid", Json::U64(other.track() as u64)),
                    ("s", Json::Str("t".into())),
                    ("args", Json::Obj(other.args())),
                ]);
                self.emit(inst)
            }
        }
    }

    fn finish(&mut self, final_cycle: u64) -> io::Result<()> {
        if !self.started {
            self.start()?;
        }
        self.close_span(final_cycle)?;
        self.out.write_all(b"\n]\n")?;
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CacheKind, EngineKind};
    use std::sync::{Arc, Mutex};

    /// Shared in-memory writer for capturing sink output in tests.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn events() -> Vec<Stamped> {
        vec![
            Stamped {
                cycle: 0,
                event: TraceEvent::ModeSwap {
                    to: EngineKind::Primary,
                    pc: 0x2000,
                },
            },
            Stamped {
                cycle: 5,
                event: TraceEvent::CacheMiss {
                    cache: CacheKind::Instruction,
                    addr: 0x2000,
                    penalty: 8,
                },
            },
            Stamped {
                cycle: 40,
                event: TraceEvent::ModeSwap {
                    to: EngineKind::Vliw,
                    pc: 0x2010,
                },
            },
            Stamped {
                cycle: 90,
                event: TraceEvent::ModeSwap {
                    to: EngineKind::Primary,
                    pc: 0x2080,
                },
            },
        ]
    }

    fn run_sink(format: TraceFormat, final_cycle: u64) -> String {
        let buf = Shared::default();
        let mut sink = sink_to_writer(format, Box::new(buf.clone()));
        for ev in events() {
            sink.record(&ev).unwrap();
        }
        sink.finish(final_cycle).unwrap();
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let out = run_sink(TraceFormat::Jsonl, 100);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in lines {
            let j = Json::parse(line).expect("each line parses");
            assert!(j.get("cycle").is_some());
            assert!(j.get("kind").is_some());
        }
    }

    #[test]
    fn text_lines_are_readable() {
        let out = run_sink(TraceFormat::Text, 100);
        assert!(out.contains("mode_swap"));
        assert!(out.contains("cache_miss"));
        assert!(out.contains("end_of_trace"));
    }

    #[test]
    fn perfetto_spans_sum_to_final_cycle() {
        let out = run_sink(TraceFormat::Perfetto, 100);
        let j = Json::parse(&out).expect("valid JSON document");
        let arr = j.as_arr().expect("trace-event array");
        let spans: Vec<&Json> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        // primary [0,40), vliw [40,90), primary [90,100).
        assert_eq!(spans.len(), 3);
        let total: u64 = spans
            .iter()
            .map(|s| s.get("dur").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(total, 100);
        assert_eq!(spans[0].get("name").and_then(Json::as_str), Some("primary"));
        assert_eq!(spans[1].get("name").and_then(Json::as_str), Some("vliw"));
        // Instants carry their component track and args.
        let inst: Vec<&Json> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .collect();
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].get("tid").and_then(Json::as_u64), Some(4));
        assert_eq!(
            inst[0]
                .get("args")
                .and_then(|a| a.get("cache"))
                .and_then(Json::as_str),
            Some("icache")
        );
    }

    #[test]
    fn perfetto_counters_render_as_counter_tracks() {
        let buf = Shared::default();
        let mut sink = PerfettoSink::new(Box::new(buf.clone()));
        sink.record(&Stamped {
            cycle: 500,
            event: TraceEvent::Counters {
                instructions: 900,
                ipc_milli: 1800,
                vliw_cycles: 400,
                primary_cycles: 60,
                overhead_cycles: 30,
                degraded_cycles: 10,
            },
        })
        .unwrap();
        sink.finish(600).unwrap();
        let out = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let j = Json::parse(&out).expect("valid JSON document");
        let counters: Vec<&Json> = j
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 3);
        for c in &counters {
            assert_eq!(c.get("ts").and_then(Json::as_u64), Some(500));
        }
        assert_eq!(
            counters[0]
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_u64),
            Some(900)
        );
        let pools = counters[2].get("args").unwrap();
        assert_eq!(pools.get("vliw").and_then(Json::as_u64), Some(400));
        assert_eq!(pools.get("degraded").and_then(Json::as_u64), Some(10));
    }

    #[test]
    fn perfetto_empty_trace_is_valid_json() {
        let buf = Shared::default();
        let mut sink = PerfettoSink::new(Box::new(buf.clone()));
        sink.finish(0).unwrap();
        let out = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(Json::parse(&out).is_ok());
    }

    #[test]
    fn format_from_str() {
        assert_eq!("jsonl".parse::<TraceFormat>().unwrap(), TraceFormat::Jsonl);
        assert_eq!(
            "perfetto".parse::<TraceFormat>().unwrap(),
            TraceFormat::Perfetto
        );
        assert_eq!("text".parse::<TraceFormat>().unwrap(), TraceFormat::Text);
        assert!("csv".parse::<TraceFormat>().is_err());
    }
}
