//! Bounded flight-recorder ring buffer.
//!
//! Holds the most recent `capacity` events; older events are silently
//! overwritten but counted, so a postmortem can report both what it has
//! and how much history it lost.

use crate::event::Stamped;

/// Fixed-capacity ring of [`Stamped`] events.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<Stamped>,
    cap: usize,
    /// Index the next push writes to (== oldest element once full).
    next: usize,
    /// Total pushes over the recorder's lifetime.
    recorded: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRecorder {
            buf: Vec::with_capacity(cap.min(4096)),
            cap,
            next: 0,
            recorded: 0,
        }
    }

    /// Append an event, overwriting the oldest once full.
    pub fn push(&mut self, ev: Stamped) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
        }
        self.next = (self.next + 1) % self.cap;
        self.recorded += 1;
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of events held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events pushed over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Iterate over held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Stamped> {
        let (newer, older) = if self.buf.len() < self.cap {
            (&self.buf[..], &[][..])
        } else {
            // Full: `next` points at the oldest element.
            let (tail, head) = self.buf.split_at(self.next);
            (head, tail)
        };
        newer.iter().chain(older.iter())
    }

    /// The last `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Stamped> {
        let len = self.buf.len();
        self.iter().skip(len.saturating_sub(n)).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn ev(cycle: u64) -> Stamped {
        Stamped {
            cycle,
            event: TraceEvent::AliasException { tag: cycle as u32 },
        }
    }

    #[test]
    fn fills_then_wraps() {
        let mut r = FlightRecorder::new(4);
        for c in 0..3 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);

        for c in 3..10 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn tail_clamps_to_available() {
        let mut r = FlightRecorder::new(8);
        for c in 0..5 {
            r.push(ev(c));
        }
        assert_eq!(
            r.tail(3).iter().map(|e| e.cycle).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(r.tail(100).len(), 5);
        assert!(r.tail(0).is_empty());
    }

    #[test]
    fn wraparound_exactly_at_boundary() {
        let mut r = FlightRecorder::new(3);
        for c in 0..3 {
            r.push(ev(c));
        }
        // Exactly full, no drops yet.
        assert_eq!(r.dropped(), 0);
        r.push(ev(3));
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.iter().map(|e| e.cycle).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut r = FlightRecorder::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(
            r.tail(5).iter().map(|e| e.cycle).collect::<Vec<_>>(),
            vec![2]
        );
    }
}
