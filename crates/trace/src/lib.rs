//! Observability for the DTSVLIW simulator: a typed, cycle-stamped
//! event stream, a bounded flight-recorder ring buffer, a metrics
//! registry (counters + histograms folded into `RunStats`), and
//! pluggable sinks — human-readable text, JSONL, and Chrome trace-event
//! JSON loadable in [Perfetto](https://ui.perfetto.dev).
//!
//! The machine owns an optional [`Tracer`]; every emission site costs a
//! single branch when tracing is disabled. When enabled, each event is
//! stamped with the machine cycle, pushed into the ring buffer (so the
//! last N events survive for postmortems — e.g. on a test-mode
//! divergence), and streamed to the configured sink.
//!
//! ```
//! use dtsvliw_trace::{EngineKind, Stamped, TraceEvent, Tracer};
//!
//! let mut t = Tracer::new(128);
//! t.emit(0, TraceEvent::ModeSwap { to: EngineKind::Primary, pc: 0x2000 });
//! t.emit(17, TraceEvent::Mispredict { pc: 0x2010, target: 0x2040 });
//! assert_eq!(t.tail(10).len(), 2);
//! assert!(matches!(t.tail(1)[0], Stamped { cycle: 17, .. }));
//! ```

mod event;
mod metrics;
mod profile;
mod ring;
mod sample;
mod sink;
mod span;
mod telemetry;

pub use event::{CacheKind, EngineKind, EvictReason, Stamped, TraceEvent};
pub use metrics::{BucketScale, Histogram, Metrics, HIST_BUCKETS};
pub use profile::{BlockProfile, BlockProfiler, ExitKind, DEFAULT_HOT_WINDOW};
pub use ring::FlightRecorder;
pub use sample::{SamplingProfiler, DEFAULT_SAMPLE_PERIOD};
pub use sink::{sink_to_writer, EventSink, JsonlSink, PerfettoSink, TextSink, TraceFormat};
pub use span::{
    canonical_spans, merge_perfetto, parse_jsonl as parse_span_jsonl, validate_perfetto, SpanEvent,
    SpanKind, SpanLog, SpanPhase, SPAN_KINDS,
};
pub use telemetry::{BurstDelta, Heartbeat, HeartbeatRecord, Telemetry};

use std::io;

/// The recording front-end the machine owns: a flight-recorder ring
/// buffer plus an optional streaming sink.
pub struct Tracer {
    ring: FlightRecorder,
    sink: Option<Box<dyn EventSink + Send>>,
    /// First sink I/O error, kept until [`Tracer::finish`]; recording
    /// into the ring continues (an unwritable disk must not kill a
    /// multi-minute simulation that the ring can still explain).
    sink_error: Option<io::Error>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("recorded", &self.ring.recorded())
            .field("has_sink", &self.sink.is_some())
            .finish()
    }
}

impl Tracer {
    /// A tracer recording the last `ring_capacity` events, no sink.
    pub fn new(ring_capacity: usize) -> Self {
        Tracer {
            ring: FlightRecorder::new(ring_capacity),
            sink: None,
            sink_error: None,
        }
    }

    /// A tracer that additionally streams every event to `sink`.
    pub fn with_sink(ring_capacity: usize, sink: Box<dyn EventSink + Send>) -> Self {
        Tracer {
            ring: FlightRecorder::new(ring_capacity),
            sink: Some(sink),
            sink_error: None,
        }
    }

    /// Record one event at `cycle`.
    pub fn emit(&mut self, cycle: u64, event: TraceEvent) {
        let ev = Stamped { cycle, event };
        self.ring.push(ev);
        if let Some(sink) = &mut self.sink {
            if let Err(e) = sink.record(&ev) {
                self.sink_error.get_or_insert(e);
                self.sink = None;
            }
        }
    }

    /// The last `n` recorded events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Stamped> {
        self.ring.tail(n)
    }

    /// Total events emitted (including ones the ring has overwritten).
    pub fn recorded(&self) -> u64 {
        self.ring.recorded()
    }

    /// Events overwritten by ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Close the sink: flush buffered output and terminate the document
    /// (the Perfetto sink closes the open engine-mode span at
    /// `final_cycle` so span durations sum to total cycles). Returns the
    /// first error the sink hit, if any.
    pub fn finish(&mut self, final_cycle: u64) -> io::Result<()> {
        if let Some(mut sink) = self.sink.take() {
            sink.finish(final_cycle)?;
        }
        match self.sink_error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Render the last `n` events as a text postmortem dump.
    pub fn dump_tail(&self, n: usize) -> String {
        use std::fmt::Write;
        let tail = self.tail(n);
        let mut s = String::new();
        let _ = writeln!(
            s,
            "--- flight recorder: last {} of {} events ({} dropped) ---",
            tail.len(),
            self.recorded(),
            self.dropped()
        );
        for ev in &tail {
            let _ = writeln!(s, "{ev}");
        }
        s
    }
}
