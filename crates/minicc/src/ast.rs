//! Abstract syntax.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LAnd,
    LOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnOp {
    Neg,
    Not,
    LNot,
}

/// Expressions.
#[derive(Debug, Clone)]
pub(crate) enum Expr {
    Num(i64),
    Var(String),
    /// `name[index]`: word element of a global array.
    Index(String, Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Un(UnOp, Box<Expr>),
    Call(String, Vec<Expr>),
    /// `lw(addr)` / `lb(addr)`.
    Load {
        byte: bool,
        addr: Box<Expr>,
    },
    /// `addr(global)`.
    AddrOf(String),
}

/// Statements.
#[derive(Debug, Clone)]
pub(crate) enum Stmt {
    /// `var name = e;` (frame slot) or `reg name = e;` (register).
    Decl {
        name: String,
        in_reg: bool,
        init: Expr,
        line: usize,
    },
    Assign {
        name: String,
        value: Expr,
        line: usize,
    },
    AssignIndex {
        name: String,
        index: Expr,
        value: Expr,
        line: usize,
    },
    /// `sw(addr, v);` / `sb(addr, v);`
    Store {
        byte: bool,
        addr: Expr,
        value: Expr,
        line: usize,
    },
    If {
        cond: Expr,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
        line: usize,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
        line: usize,
    },
    Break(usize),
    Continue(usize),
    Return(Option<Expr>, usize),
    Expr(Expr, usize),
    Putc(Expr, usize),
    Putu(Expr, usize),
    Assert {
        cond: Expr,
        site: i64,
        line: usize,
    },
    Halt(Expr, usize),
}

/// A global scalar or array.
#[derive(Debug, Clone)]
pub(crate) struct Global {
    pub name: String,
    /// Number of words (1 for a scalar).
    pub words: u32,
    /// Initial value (scalars only).
    pub init: i64,
    pub is_array: bool,
}

/// A function.
#[derive(Debug, Clone)]
pub(crate) struct Func {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
    pub line: usize,
}

/// A whole program.
#[derive(Debug, Clone, Default)]
pub(crate) struct Program {
    pub globals: Vec<Global>,
    pub funcs: Vec<Func>,
}
