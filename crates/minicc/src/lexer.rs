//! Tokenizer.

use std::fmt;

/// A compile error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

pub(crate) fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        line,
        msg: msg.into(),
    })
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Num(i64),
    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    AndAnd,
    OrOr,
    Eof,
}

#[derive(Debug, Clone)]
pub(crate) struct Spanned {
    pub tok: Tok,
    pub line: usize,
}

pub(crate) fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return err(line, "unterminated block comment");
                }
                i += 2;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(bytes[start..i].iter().collect()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let hex = c == '0' && matches!(bytes.get(i + 1), Some('x') | Some('X'));
                if hex {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let s: String = bytes[start + 2..i].iter().collect();
                    let v = i64::from_str_radix(&s, 16).map_err(|_| CompileError {
                        line,
                        msg: format!("bad hex literal {s}"),
                    })?;
                    out.push(Spanned {
                        tok: Tok::Num(v),
                        line,
                    });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let s: String = bytes[start..i].iter().collect();
                    let v = s.parse::<i64>().map_err(|_| CompileError {
                        line,
                        msg: format!("bad literal {s}"),
                    })?;
                    out.push(Spanned {
                        tok: Tok::Num(v),
                        line,
                    });
                }
            }
            '\'' => {
                // character literal
                let (v, consumed) = match (bytes.get(i + 1), bytes.get(i + 2), bytes.get(i + 3)) {
                    (Some('\\'), Some(e), Some('\'')) => {
                        let v = match e {
                            'n' => b'\n',
                            't' => b'\t',
                            '0' => 0,
                            '\\' => b'\\',
                            '\'' => b'\'',
                            other => return err(line, format!("bad escape \\{other}")),
                        };
                        (v as i64, 4)
                    }
                    (Some(ch), Some('\''), _) => (*ch as i64, 3),
                    _ => return err(line, "bad character literal"),
                };
                out.push(Spanned {
                    tok: Tok::Num(v),
                    line,
                });
                i += consumed;
            }
            _ => {
                let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                let (tok, n) = match two.as_str() {
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "==" => (Tok::Eq, 2),
                    "!=" => (Tok::Ne, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    _ => {
                        let t = match c {
                            '(' => Tok::LParen,
                            ')' => Tok::RParen,
                            '{' => Tok::LBrace,
                            '}' => Tok::RBrace,
                            '[' => Tok::LBracket,
                            ']' => Tok::RBracket,
                            ',' => Tok::Comma,
                            ';' => Tok::Semi,
                            '=' => Tok::Assign,
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            '/' => Tok::Slash,
                            '%' => Tok::Percent,
                            '&' => Tok::Amp,
                            '|' => Tok::Pipe,
                            '^' => Tok::Caret,
                            '~' => Tok::Tilde,
                            '!' => Tok::Bang,
                            '<' => Tok::Lt,
                            '>' => Tok::Gt,
                            other => return err(line, format!("unexpected character `{other}`")),
                        };
                        (t, 1)
                    }
                };
                out.push(Spanned { tok, line });
                i += n;
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_operators_and_literals() {
        let ts = lex("x = 0x1f + 'A' - 10; // comment\n y = x << 2 && !z;").unwrap();
        let kinds: Vec<&Tok> = ts.iter().map(|s| &s.tok).collect();
        assert!(kinds.contains(&&Tok::Num(31)));
        assert!(kinds.contains(&&Tok::Num(65)));
        assert!(kinds.contains(&&Tok::Shl));
        assert!(kinds.contains(&&Tok::AndAnd));
        assert!(kinds.contains(&&Tok::Bang));
    }

    #[test]
    fn tracks_lines() {
        let ts = lex("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = ts.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn block_comments() {
        let ts = lex("a /* multi\nline */ b").unwrap();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[1].line, 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a @ b").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
