//! minicc: a small C-like language compiled to the SPARC V7 subset.
//!
//! The paper's benchmarks were SPECint95 programs compiled by `gcc`; the
//! reproduction's workloads are written in this language so their
//! dynamic traces have compiler-shaped structure: register-window
//! calling convention (`save`/`restore`, args in `%o0-%o5`),
//! condition-code branches with `nop` delay slots, software multiply and
//! divide routines (SPARC V7 has no integer multiply/divide), and a mix
//! of register and memory operand traffic.
//!
//! # Language
//!
//! * One type: 32-bit `int`.
//! * Globals: `int x;`, `int x = 5;`, `int buf[256];`.
//! * Functions: `fn name(a, b) { ... }`, up to 6 parameters (passed in
//!   registers), recursive calls allowed.
//! * Locals: `var x = e;` (frame memory) and `reg x = e;` (a window
//!   local register — use for hot loop counters).
//! * Statements: assignment, `if`/`else`, `while`, `for`, `break`,
//!   `continue`, `return`, expression calls.
//! * Expressions: `+ - * / % & | ^ << >> == != < <= > >= && || ! ~ -`
//!   with C precedence; `&&`/`||` short-circuit. `*`, `/`, `%` call the
//!   software runtime (`mc_umul`-style routines built from `mulscc`).
//! * Arrays: `buf[i]` reads/writes words of a global array.
//! * Intrinsics: `lw(addr)`, `lb(addr)` (unsigned byte), `sw(addr, v)`,
//!   `sb(addr, v)`, `addr(global)` (address-of), `putc(c)`, `putu(n)`,
//!   `assert(cond, site)`, `halt(code)`.
//!
//! ```
//! let image = dtsvliw_minicc::compile_to_image("
//!     fn main() {
//!         reg i = 0;
//!         reg sum = 0;
//!         while (i < 10) { sum = sum + i * i; i = i + 1; }
//!         return sum;
//!     }
//! ").unwrap();
//! # let _ = image;
//! ```

mod ast;
mod codegen;
mod lexer;
mod parser;
mod runtime;

pub use codegen::compile_to_asm;
pub use lexer::CompileError;

use dtsvliw_asm::Image;

/// Compile a minicc program to a loadable image: code at the default
/// origin, data after it, runtime library appended, `_start` calling
/// `main` and halting with its return value.
pub fn compile_to_image(src: &str) -> Result<Image, CompileError> {
    let asm = compile_to_asm(src)?;
    dtsvliw_asm::assemble(&asm).map_err(|e| CompileError {
        line: e.line,
        msg: format!("internal: generated assembly rejected: {}", e.msg),
    })
}
