//! The software arithmetic runtime, mirroring the SPARC library
//! routines: V7 has only `mulscc`, so multiply and divide are loops.
//!
//! All routines are leaves running in the caller's register window; they
//! clobber only `%o0-%o5`, `%g5-%g7` and `%y`, and keep every delay slot
//! a `nop` (the Scheduler Unit rejects control transfers with live delay
//! slots).

/// Assembly text appended to every compiled program.
pub(crate) const RUNTIME_ASM: &str = "
! ---------------------------------------------------------------
! mc_mul: %o0 * %o1 -> %o0 (low 32 bits; identical for signed).
! 32 multiply steps plus the final adjustment shift, like .umul.
! ---------------------------------------------------------------
mc_mul:
    wr %o1, 0, %y
    andcc %g0, %g0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %o0, %o4
    mulscc %o4, %g0, %o4
    rd %y, %o0
    retl
    nop

! ---------------------------------------------------------------
! mc_udivmod: unsigned %o0 / %o1 -> quotient %o0, remainder %o1.
! Classic 32-step restoring division. Traps (site 120) on /0.
! ---------------------------------------------------------------
mc_udivmod:
    cmp %o1, 0
    bne mc_udm_ok
    nop
    mov 120, %o0
    ta 1
mc_udm_ok:
    mov 0, %o2
    mov 0, %o3
    mov 32, %g5
mc_udm_loop:
    sll %o3, 1, %o3
    srl %o0, 31, %g6
    or %o3, %g6, %o3
    sll %o0, 1, %o0
    sll %o2, 1, %o2
    cmp %o3, %o1
    blu mc_udm_skip
    nop
    sub %o3, %o1, %o3
    or %o2, 1, %o2
mc_udm_skip:
    subcc %g5, 1, %g5
    bne mc_udm_loop
    nop
    mov %o2, %o0
    mov %o3, %o1
    retl
    nop

! ---------------------------------------------------------------
! mc_div: signed %o0 / %o1 -> %o0 (C truncating division).
! ---------------------------------------------------------------
mc_div:
    mov %o7, %g7
    xor %o0, %o1, %o5
    cmp %o0, 0
    bge mc_div_a
    nop
    neg %o0
mc_div_a:
    cmp %o1, 0
    bge mc_div_b
    nop
    neg %o1
mc_div_b:
    call mc_udivmod
    nop
    cmp %o5, 0
    bge mc_div_done
    nop
    neg %o0
mc_div_done:
    jmp %g7 + 8
    nop

! ---------------------------------------------------------------
! mc_rem: signed %o0 % %o1 -> %o0 (sign of the dividend, like C).
! ---------------------------------------------------------------
mc_rem:
    mov %o7, %g7
    mov %o0, %o5
    cmp %o0, 0
    bge mc_rem_a
    nop
    neg %o0
mc_rem_a:
    cmp %o1, 0
    bge mc_rem_b
    nop
    neg %o1
mc_rem_b:
    call mc_udivmod
    nop
    mov %o1, %o0
    cmp %o5, 0
    bge mc_rem_done
    nop
    neg %o0
mc_rem_done:
    jmp %g7 + 8
    nop
";
