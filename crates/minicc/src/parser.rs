//! Recursive-descent parser with C operator precedence.

use crate::ast::*;
use crate::lexer::{err, lex, CompileError, Spanned, Tok};

pub(crate) fn parse(src: &str) -> Result<Program, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: Tok) -> Result<(), CompileError> {
        if *self.peek() == t {
            self.next();
            Ok(())
        } else {
            err(
                self.line(),
                format!("expected {t:?}, found {:?}", self.peek()),
            )
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => err(self.line(), format!("expected identifier, found {other:?}")),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    // ------------------------------------------------------------

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut prog = Program::default();
        loop {
            if *self.peek() == Tok::Eof {
                break;
            }
            if self.is_kw("int") {
                self.next();
                let name = self.ident()?;
                let mut g = Global {
                    name,
                    words: 1,
                    init: 0,
                    is_array: false,
                };
                if *self.peek() == Tok::LBracket {
                    self.next();
                    match self.next() {
                        Tok::Num(n) if n > 0 => g.words = n as u32,
                        other => {
                            return err(
                                self.line(),
                                format!("array size must be positive: {other:?}"),
                            )
                        }
                    }
                    g.is_array = true;
                    self.eat(Tok::RBracket)?;
                } else if *self.peek() == Tok::Assign {
                    self.next();
                    let neg = if *self.peek() == Tok::Minus {
                        self.next();
                        true
                    } else {
                        false
                    };
                    match self.next() {
                        Tok::Num(n) => g.init = if neg { -n } else { n },
                        other => {
                            return err(
                                self.line(),
                                format!("global init must be a literal: {other:?}"),
                            )
                        }
                    }
                }
                self.eat(Tok::Semi)?;
                prog.globals.push(g);
            } else if self.is_kw("fn") {
                let line = self.line();
                self.next();
                let name = self.ident()?;
                self.eat(Tok::LParen)?;
                let mut params = Vec::new();
                if *self.peek() != Tok::RParen {
                    loop {
                        params.push(self.ident()?);
                        if *self.peek() == Tok::Comma {
                            self.next();
                        } else {
                            break;
                        }
                    }
                }
                self.eat(Tok::RParen)?;
                if params.len() > 6 {
                    return err(line, "functions take at most 6 parameters");
                }
                let body = self.block()?;
                prog.funcs.push(Func {
                    name,
                    params,
                    body,
                    line,
                });
            } else {
                return err(
                    self.line(),
                    format!("expected `int` or `fn`, found {:?}", self.peek()),
                );
            }
        }
        Ok(prog)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.eat(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.eat(Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if self.is_kw("var") || self.is_kw("reg") {
            let in_reg = self.is_kw("reg");
            self.next();
            let name = self.ident()?;
            let init = if *self.peek() == Tok::Assign {
                self.next();
                self.expr()?
            } else {
                Expr::Num(0)
            };
            self.eat(Tok::Semi)?;
            return Ok(Stmt::Decl {
                name,
                in_reg,
                init,
                line,
            });
        }
        if self.is_kw("if") {
            self.next();
            self.eat(Tok::LParen)?;
            let cond = self.expr()?;
            self.eat(Tok::RParen)?;
            let then = self.block()?;
            let els = if self.is_kw("else") {
                self.next();
                if self.is_kw("if") {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then,
                els,
                line,
            });
        }
        if self.is_kw("while") {
            self.next();
            self.eat(Tok::LParen)?;
            let cond = self.expr()?;
            self.eat(Tok::RParen)?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body, line });
        }
        if self.is_kw("for") {
            // for (init; cond; step) body  ==>  init; while (cond) { body; step; }
            self.next();
            self.eat(Tok::LParen)?;
            let init = if self.is_kw("var") || self.is_kw("reg") {
                let in_reg = self.is_kw("reg");
                self.next();
                let name = self.ident()?;
                self.eat(Tok::Assign)?;
                let init = self.expr()?;
                Stmt::Decl {
                    name,
                    in_reg,
                    init,
                    line,
                }
            } else {
                self.simple_stmt(line)?
            };
            self.eat(Tok::Semi)?;
            let cond = self.expr()?;
            self.eat(Tok::Semi)?;
            let step = self.simple_stmt(line)?;
            self.eat(Tok::RParen)?;
            let mut body = self.block()?;
            body.push(step);
            return Ok(Stmt::If {
                cond: Expr::Num(1),
                then: vec![init, Stmt::While { cond, body, line }],
                els: Vec::new(),
                line,
            });
        }
        if self.is_kw("break") {
            self.next();
            self.eat(Tok::Semi)?;
            return Ok(Stmt::Break(line));
        }
        if self.is_kw("continue") {
            self.next();
            self.eat(Tok::Semi)?;
            return Ok(Stmt::Continue(line));
        }
        if self.is_kw("return") {
            self.next();
            let e = if *self.peek() != Tok::Semi {
                Some(self.expr()?)
            } else {
                None
            };
            self.eat(Tok::Semi)?;
            return Ok(Stmt::Return(e, line));
        }
        let s = self.simple_stmt(line)?;
        self.eat(Tok::Semi)?;
        Ok(s)
    }

    /// Assignment, store/print/assert intrinsics, or expression call —
    /// the statement forms legal in `for` headers.
    fn simple_stmt(&mut self, line: usize) -> Result<Stmt, CompileError> {
        // Intrinsic statements.
        for (kw, byte) in [("sw", false), ("sb", true)] {
            if self.is_kw(kw) {
                self.next();
                self.eat(Tok::LParen)?;
                let addr = self.expr()?;
                self.eat(Tok::Comma)?;
                let value = self.expr()?;
                self.eat(Tok::RParen)?;
                return Ok(Stmt::Store {
                    byte,
                    addr,
                    value,
                    line,
                });
            }
        }
        if self.is_kw("putc") || self.is_kw("putu") {
            let is_c = self.is_kw("putc");
            self.next();
            self.eat(Tok::LParen)?;
            let e = self.expr()?;
            self.eat(Tok::RParen)?;
            return Ok(if is_c {
                Stmt::Putc(e, line)
            } else {
                Stmt::Putu(e, line)
            });
        }
        if self.is_kw("assert") {
            self.next();
            self.eat(Tok::LParen)?;
            let cond = self.expr()?;
            self.eat(Tok::Comma)?;
            let site = match self.next() {
                Tok::Num(n) => n,
                other => return err(line, format!("assert site must be a literal: {other:?}")),
            };
            self.eat(Tok::RParen)?;
            return Ok(Stmt::Assert { cond, site, line });
        }
        if self.is_kw("halt") {
            self.next();
            self.eat(Tok::LParen)?;
            let e = self.expr()?;
            self.eat(Tok::RParen)?;
            return Ok(Stmt::Halt(e, line));
        }
        // Assignment or expression statement: need lookahead.
        if let Tok::Ident(name) = self.peek().clone() {
            let save = self.pos;
            self.next();
            match self.peek().clone() {
                Tok::Assign => {
                    self.next();
                    let value = self.expr()?;
                    return Ok(Stmt::Assign { name, value, line });
                }
                Tok::LBracket => {
                    self.next();
                    let index = self.expr()?;
                    self.eat(Tok::RBracket)?;
                    if *self.peek() == Tok::Assign {
                        self.next();
                        let value = self.expr()?;
                        return Ok(Stmt::AssignIndex {
                            name,
                            index,
                            value,
                            line,
                        });
                    }
                    self.pos = save;
                }
                _ => self.pos = save,
            }
        }
        let e = self.expr()?;
        Ok(Stmt::Expr(e, line))
    }

    // ---------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.lor()
    }

    fn lor(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.land()?;
        while *self.peek() == Tok::OrOr {
            self.next();
            let r = self.land()?;
            e = Expr::Bin(BinOp::LOr, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn land(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.bitor()?;
        while *self.peek() == Tok::AndAnd {
            self.next();
            let r = self.bitor()?;
            e = Expr::Bin(BinOp::LAnd, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitor(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.bitxor()?;
        while *self.peek() == Tok::Pipe {
            self.next();
            let r = self.bitxor()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitxor(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.bitand()?;
        while *self.peek() == Tok::Caret {
            self.next();
            let r = self.bitand()?;
            e = Expr::Bin(BinOp::Xor, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitand(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.equality()?;
        while *self.peek() == Tok::Amp {
            self.next();
            let r = self.equality()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                _ => break,
            };
            self.next();
            let r = self.relational()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.shift()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            self.next();
            let r = self.shift()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => break,
            };
            self.next();
            let r = self.additive()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.next();
            let r = self.multiplicative()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.next();
            let r = self.unary()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        match self.peek() {
            Tok::Minus => {
                self.next();
                Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)))
            }
            Tok::Tilde => {
                self.next();
                Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)))
            }
            Tok::Bang => {
                self.next();
                Ok(Expr::Un(UnOp::LNot, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.next() {
            Tok::Num(n) => Ok(Expr::Num(n)),
            Tok::LParen => {
                let e = self.expr()?;
                self.eat(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => match self.peek().clone() {
                Tok::LParen => {
                    self.next();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.next();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(Tok::RParen)?;
                    match name.as_str() {
                        "lw" | "lb" => {
                            if args.len() != 1 {
                                return err(line, format!("{name} takes one argument"));
                            }
                            Ok(Expr::Load {
                                byte: name == "lb",
                                addr: Box::new(args.remove_first()),
                            })
                        }
                        "addr" => {
                            if args.len() != 1 {
                                return err(line, "addr takes one argument");
                            }
                            match args.remove_first() {
                                Expr::Var(g) => Ok(Expr::AddrOf(g)),
                                _ => err(line, "addr argument must be a global name"),
                            }
                        }
                        _ => {
                            if args.len() > 6 {
                                return err(line, "calls take at most 6 arguments");
                            }
                            Ok(Expr::Call(name, args))
                        }
                    }
                }
                Tok::LBracket => {
                    self.next();
                    let idx = self.expr()?;
                    self.eat(Tok::RBracket)?;
                    Ok(Expr::Index(name, Box::new(idx)))
                }
                _ => Ok(Expr::Var(name)),
            },
            other => err(line, format!("expected expression, found {other:?}")),
        }
    }
}

trait RemoveFirst<T> {
    fn remove_first(&mut self) -> T;
}

impl<T> RemoveFirst<T> for Vec<T> {
    fn remove_first(&mut self) -> T {
        self.remove(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_control_flow() {
        let p = parse(
            "int g; int buf[8];
             fn main(a, b) {
                 var x = a + b * 2;
                 reg i = 0;
                 while (i < 8) { buf[i] = x; i = i + 1; }
                 if (x > 3 && g != 0) { return x; } else { return 0; }
             }",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[1].words, 8);
        assert_eq!(p.funcs[0].params, vec!["a", "b"]);
    }

    #[test]
    fn for_desugars() {
        let p =
            parse("fn f() { for (reg i = 0; i < 4; i = i + 1) { putc(i); } return 0; }").unwrap();
        assert!(matches!(p.funcs[0].body[0], Stmt::If { .. }));
    }

    #[test]
    fn precedence() {
        // a + b * c parses as a + (b * c)
        let p = parse("fn f(a, b, c) { return a + b * c; }").unwrap();
        match &p.funcs[0].body[0] {
            Stmt::Return(Some(Expr::Bin(BinOp::Add, _, rhs)), _) => {
                assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_have_lines() {
        let e = parse("fn f() {\n  var = 3;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("fn f(a,b,c,d,e,f2,g) { return 0; }").unwrap_err();
        assert!(e.msg.contains("6 parameters"));
    }
}
