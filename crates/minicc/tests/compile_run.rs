//! Compile minicc programs and execute them on the sequential reference
//! machine, checking results end to end.

use dtsvliw_minicc::compile_to_image;
use dtsvliw_primary::{RefMachine, RunOutcome};

fn run(src: &str) -> (u32, String) {
    let img = compile_to_image(src).unwrap_or_else(|e| panic!("compile error: {e}"));
    let mut m = RefMachine::new(&img);
    match m
        .run(50_000_000)
        .unwrap_or_else(|e| panic!("runtime error: {e}\n"))
    {
        RunOutcome::Halted { code, .. } => (code, m.output_string()),
        RunOutcome::OutOfFuel => panic!("program did not halt"),
    }
}

fn result_of(src: &str) -> u32 {
    run(src).0
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(result_of("fn main() { return 2 + 3 * 4; }"), 14);
    assert_eq!(result_of("fn main() { return (2 + 3) * 4; }"), 20);
    assert_eq!(result_of("fn main() { return 100 - 7 * 9; }"), 37);
    assert_eq!(result_of("fn main() { return 1 << 10; }"), 1024);
    assert_eq!(result_of("fn main() { return 0xff00 >> 8; }"), 0xff);
    assert_eq!(
        result_of("fn main() { return (0xf0 | 0x0f) ^ 0x3c; }"),
        0xc3
    );
    assert_eq!(result_of("fn main() { return 255 & 0x18; }"), 0x18);
    assert_eq!(result_of("fn main() { return -(5 - 12); }"), 7);
    assert_eq!(
        result_of("fn main() { return ~0 - 0xfffffff0; }") as i32,
        15 - 16 + 16
    );
}

#[test]
fn multiply_divide_remainder() {
    assert_eq!(result_of("fn main() { return 123 * 456; }"), 56088);
    assert_eq!(result_of("fn main() { return 56088 / 456; }"), 123);
    assert_eq!(result_of("fn main() { return 56089 % 456; }"), 1);
    assert_eq!(
        result_of("fn main() { return 7 * 8; }"),
        56,
        "power-of-two path"
    );
    assert_eq!(result_of("fn main() { return 12345678 / 1; }"), 12345678);
    // Signed semantics (C truncation).
    assert_eq!(result_of("fn main() { return -7 / 2; }") as i32, -3);
    assert_eq!(result_of("fn main() { return -7 % 2; }") as i32, -1);
    assert_eq!(result_of("fn main() { return 7 / -2; }") as i32, -3);
    // Big unsigned-ish values through the signed-correct low word.
    assert_eq!(
        result_of("fn main() { return 40503 * 30103; }"),
        40503u32.wrapping_mul(30103)
    );
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(result_of("fn main() { return 3 < 5; }"), 1);
    assert_eq!(result_of("fn main() { return 5 <= 4; }"), 0);
    assert_eq!(
        result_of("fn main() { return -1 < 1; }"),
        1,
        "signed compare"
    );
    assert_eq!(result_of("fn main() { return (1 < 2) && (3 > 2); }"), 1);
    assert_eq!(result_of("fn main() { return 0 || (2 == 2); }"), 1);
    assert_eq!(result_of("fn main() { return !(1 == 1); }"), 0);
    // Short-circuit: the second operand must not execute.
    let src = "
        int hits;
        fn bump() { hits = hits + 1; return 1; }
        fn main() {
            var a = 0 && bump();
            var b = 1 || bump();
            return hits * 10 + a + b;
        }";
    assert_eq!(result_of(src), 1);
}

#[test]
fn control_flow() {
    let src = "
        fn main() {
            reg sum = 0;
            reg i = 0;
            while (i < 100) {
                i = i + 1;
                if (i % 2 == 0) { continue; }
                if (i > 50) { break; }
                sum = sum + i;
            }
            return sum;
        }";
    // odd numbers 1..=49
    assert_eq!(result_of(src), (1..=49).step_by(2).sum::<u32>());
}

#[test]
fn for_loops() {
    let src = "
        fn main() {
            reg total = 0;
            for (reg i = 1; i <= 10; i = i + 1) {
                for (reg j = 1; j <= 10; j = j + 1) {
                    total = total + i * j;
                }
            }
            return total;
        }";
    assert_eq!(result_of(src), 55 * 55);
}

#[test]
fn functions_and_recursion() {
    let src = "
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { return fib(15); }";
    assert_eq!(result_of(src), 610);

    let src = "
        fn ack(m, n) {
            if (m == 0) { return n + 1; }
            if (n == 0) { return ack(m - 1, 1); }
            return ack(m - 1, ack(m, n - 1));
        }
        fn main() { return ack(2, 3); }";
    assert_eq!(result_of(src), 9);
}

#[test]
fn six_arguments() {
    let src = "
        fn weigh(a, b, c, d, e, f) { return a + 2*b + 3*c + 4*d + 5*e + 6*f; }
        fn main() { return weigh(1, 2, 3, 4, 5, 6); }";
    assert_eq!(result_of(src), 1 + 4 + 9 + 16 + 25 + 36);
}

#[test]
fn globals_and_arrays() {
    let src = "
        int counter = 41;
        int grid[64];
        fn main() {
            counter = counter + 1;
            reg i = 0;
            while (i < 64) { grid[i] = i * i; i = i + 1; }
            return counter * 1000000 + grid[7] + grid[63];
        }";
    assert_eq!(result_of(src), 42 * 1000000 + 49 + 63 * 63);
}

#[test]
fn frame_locals_spill_to_memory() {
    // More locals than registers: `var` slots must work.
    let src = "
        fn main() {
            var a = 1; var b = 2; var c = 3; var d = 4; var e = 5;
            var f = 6; var g = 7; var h = 8; var i = 9; var j = 10;
            return a + b + c + d + e + f + g + h + i + j;
        }";
    assert_eq!(result_of(src), 55);
}

#[test]
fn byte_and_word_intrinsics() {
    let src = "
        int scratch[4];
        fn main() {
            var p = addr(scratch);
            sw(p, 0x11223344);
            sb(p + 5, 0xAB);
            return lw(p) + lb(p + 5) * 2 + lb(p + 3);
        }";
    assert_eq!(result_of(src), 0x1122_3344 + 0xAB * 2 + 0x44);
}

#[test]
fn console_and_halt() {
    let (code, out) = run("fn main() {
            putc('h'); putc('i'); putc(' ');
            putu(2026);
            halt(7);
            return 0;
        }");
    assert_eq!(code, 7);
    assert_eq!(out, "hi 2026");
}

#[test]
fn assert_failure_aborts() {
    let img = compile_to_image("fn main() { assert(1 == 2, 33); return 0; }").unwrap();
    let mut m = RefMachine::new(&img);
    let e = m.run(10_000).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("site 33"), "{msg}");
}

#[test]
fn shadowing_and_scopes() {
    let src = "
        fn main() {
            reg x = 1;
            if (x) { reg x = 10; putu(x); }
            putu(x);
            return x;
        }";
    let (code, out) = run(src);
    assert_eq!(code, 1);
    assert_eq!(out, "101");
}

#[test]
fn compile_errors_are_reported() {
    let cases = [
        ("fn main() { return y; }", "undefined variable"),
        ("fn main() { return f(); }", "undefined function"),
        (
            "fn f(a) { return a; } fn main() { return f(1, 2); }",
            "takes 1 arguments",
        ),
        ("fn main() { break; }", "break outside"),
        ("int g; int g; fn main() { return 0; }", "duplicate global"),
        ("fn f() { return 0; }", "no `main`"),
    ];
    for (src, want) in cases {
        let e = dtsvliw_minicc::compile_to_asm(src).unwrap_err();
        assert!(e.msg.contains(want), "source {src:?}: got {e}");
    }
}

#[test]
fn division_by_zero_traps() {
    let img = compile_to_image("int z; fn main() { return 5 / z; }").unwrap();
    let mut m = RefMachine::new(&img);
    let e = m.run(10_000).unwrap_err();
    assert!(e.to_string().contains("site 120"), "{e}");
}

#[test]
fn sieve_of_eratosthenes() {
    let src = "
        int flags[1000];
        fn main() {
            reg n = 1000;
            reg count = 0;
            for (reg i = 2; i < n; i = i + 1) { flags[i] = 1; }
            for (reg i = 2; i < n; i = i + 1) {
                if (flags[i]) {
                    count = count + 1;
                    reg j = i * i;
                    while (j < n) { flags[j] = 0; j = j + i; }
                }
            }
            return count;
        }";
    assert_eq!(result_of(src), 168, "primes below 1000");
}
