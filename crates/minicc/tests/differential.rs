//! Differential fuzzing of the compiler: random expression trees are
//! compiled and executed on the simulated machine, and the result is
//! compared against a Rust-side evaluator with C semantics.
//!
//! Gated behind the off-by-default `proptest` feature: the external
//! `proptest` crate is unavailable in the offline build environment
//! (restore the dev-dependency to run these).
#![cfg(feature = "proptest")]

use dtsvliw_minicc::compile_to_image;
use dtsvliw_primary::{RefMachine, RunOutcome};
use proptest::prelude::*;

/// A random expression over the variables a, b, c with guarded
/// divisions (non-zero constant divisors).
#[derive(Debug, Clone)]
enum E {
    Num(i32),
    Var(u8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    DivC(Box<E>, i32),
    RemC(Box<E>, i32),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    ShlC(Box<E>, u8),
    ShrC(Box<E>, u8),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    Neg(Box<E>),
    Not(Box<E>),
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![(-1000i32..1000).prop_map(E::Num), (0u8..3).prop_map(E::Var),];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), 1i32..100).prop_map(|(a, d)| E::DivC(Box::new(a), d)),
            (inner.clone(), 1i32..100).prop_map(|(a, d)| E::RemC(Box::new(a), d)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..31).prop_map(|(a, s)| E::ShlC(Box::new(a), s)),
            (inner.clone(), 0u8..31).prop_map(|(a, s)| E::ShrC(Box::new(a), s)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Eq(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.prop_map(|a| E::Not(Box::new(a))),
        ]
    })
}

fn to_src(e: &E) -> String {
    match e {
        E::Num(n) => format!("({n})"),
        E::Var(v) => ["a", "b", "c"][*v as usize].to_string(),
        E::Add(a, b) => format!("({} + {})", to_src(a), to_src(b)),
        E::Sub(a, b) => format!("({} - {})", to_src(a), to_src(b)),
        E::Mul(a, b) => format!("({} * {})", to_src(a), to_src(b)),
        E::DivC(a, d) => format!("({} / {d})", to_src(a)),
        E::RemC(a, d) => format!("({} % {d})", to_src(a)),
        E::And(a, b) => format!("({} & {})", to_src(a), to_src(b)),
        E::Or(a, b) => format!("({} | {})", to_src(a), to_src(b)),
        E::Xor(a, b) => format!("({} ^ {})", to_src(a), to_src(b)),
        E::ShlC(a, s) => format!("({} << {s})", to_src(a)),
        E::ShrC(a, s) => format!("({} >> {s})", to_src(a)),
        E::Lt(a, b) => format!("({} < {})", to_src(a), to_src(b)),
        E::Eq(a, b) => format!("({} == {})", to_src(a), to_src(b)),
        E::Neg(a) => format!("(-{})", to_src(a)),
        E::Not(a) => format!("(~{})", to_src(a)),
    }
}

/// The language reference semantics: 32-bit wrapping, C truncating
/// division, logical right shift, 0/1 comparisons.
fn eval(e: &E, vars: [i32; 3]) -> i32 {
    match e {
        E::Num(n) => *n,
        E::Var(v) => vars[*v as usize],
        E::Add(a, b) => eval(a, vars).wrapping_add(eval(b, vars)),
        E::Sub(a, b) => eval(a, vars).wrapping_sub(eval(b, vars)),
        E::Mul(a, b) => eval(a, vars).wrapping_mul(eval(b, vars)),
        E::DivC(a, d) => eval(a, vars).wrapping_div(*d),
        E::RemC(a, d) => eval(a, vars).wrapping_rem(*d),
        E::And(a, b) => eval(a, vars) & eval(b, vars),
        E::Or(a, b) => eval(a, vars) | eval(b, vars),
        E::Xor(a, b) => eval(a, vars) ^ eval(b, vars),
        E::ShlC(a, s) => ((eval(a, vars) as u32) << s) as i32,
        E::ShrC(a, s) => ((eval(a, vars) as u32) >> s) as i32,
        E::Lt(a, b) => (eval(a, vars) < eval(b, vars)) as i32,
        E::Eq(a, b) => (eval(a, vars) == eval(b, vars)) as i32,
        E::Neg(a) => eval(a, vars).wrapping_neg(),
        E::Not(a) => !eval(a, vars),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_expressions_match_reference_semantics(
        e in arb_expr(),
        a in -10_000i32..10_000,
        b in -10_000i32..10_000,
        c in -10_000i32..10_000,
    ) {
        let src = format!(
            "fn work(a, b, c) {{ return {}; }}\n\
             fn main() {{ return work({a}, {b}, {c}); }}",
            to_src(&e)
        );
        let img = match compile_to_image(&src) {
            Ok(img) => img,
            // Deep trees can exceed the expression stack: a *rejection*
            // is fine, miscompilation is not.
            Err(err) if err.msg.contains("too deep") => return Ok(()),
            Err(err) => panic!("compile error: {err}\n{src}"),
        };
        let mut m = RefMachine::new(&img);
        match m.run(5_000_000).unwrap() {
            RunOutcome::Halted { code, .. } => {
                let want = eval(&e, [a, b, c]);
                prop_assert_eq!(code as i32, want, "program:\n{}", src);
            }
            RunOutcome::OutOfFuel => prop_assert!(false, "did not halt"),
        }
    }
}
