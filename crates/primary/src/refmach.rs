//! The *test machine* (paper §4): a plain sequential SPARC machine.
//!
//! "Test mode puts two machines to run together: the DTSVLIW and a test
//! machine with the same characteristics of the Primary Processor. ...
//! The SPARC ISA state of both machines is compared and, if not equal,
//! an error is signalled." The test machine also provides the precise
//! sequential instruction count that forms the IPC numerator.

use crate::interp::{step, Halt, Step, StepError};
use dtsvliw_asm::Image;
use dtsvliw_isa::ArchState;
use dtsvliw_mem::Memory;

/// A standalone sequential machine over the SPARC subset.
#[derive(Debug, Clone)]
pub struct RefMachine {
    /// Architectural state.
    pub state: ArchState,
    /// Its own private memory.
    pub mem: Memory,
    /// Instructions retired so far ("as counted by the test machine").
    pub retired: u64,
    /// Console output accumulated from PUTC/PUTU traps.
    pub output: Vec<u8>,
}

/// Why a [`RefMachine::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program executed `ta EXIT`.
    Halted {
        /// Exit value from `%o0`.
        code: u32,
        /// Total retired instructions including the trap.
        retired: u64,
    },
    /// The instruction budget ran out first.
    OutOfFuel,
}

impl RefMachine {
    /// Load an image and point the machine at its entry.
    pub fn new(image: &Image) -> Self {
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        RefMachine {
            state: ArchState::new(image.entry),
            mem,
            retired: 0,
            output: Vec::new(),
        }
    }

    /// Retire one instruction.
    pub fn step(&mut self) -> Result<Step, StepError> {
        let s = step(&mut self.state, &mut self.mem, self.retired)?;
        self.retired += 1;
        if let Some(bytes) = &s.output {
            self.output.extend_from_slice(bytes);
        }
        Ok(s)
    }

    /// Run until halt or until `fuel` instructions have retired.
    pub fn run(&mut self, fuel: u64) -> Result<RunOutcome, StepError> {
        for _ in 0..fuel {
            if let Some(Halt::Exit(code)) = self.step()?.halt {
                return Ok(RunOutcome::Halted {
                    code,
                    retired: self.retired,
                });
            }
        }
        Ok(RunOutcome::OutOfFuel)
    }

    /// Console output as UTF-8 (lossy).
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsvliw_asm::assemble;

    #[test]
    fn counts_retired_instructions() {
        let img = assemble("_start: mov 1, %o0\n add %o0, 1, %o0\n ta 0\n").unwrap();
        let mut m = RefMachine::new(&img);
        let out = m.run(100).unwrap();
        assert_eq!(
            out,
            RunOutcome::Halted {
                code: 2,
                retired: 3
            }
        );
    }

    #[test]
    fn fuel_limit() {
        let img = assemble("_start: ba _start\n nop\n").unwrap();
        let mut m = RefMachine::new(&img);
        assert_eq!(m.run(10).unwrap(), RunOutcome::OutOfFuel);
        assert_eq!(m.retired, 10);
    }

    #[test]
    fn console_output() {
        let img = assemble(
            "_start: mov 'H', %o0\n ta 2\n mov 'i', %o0\n ta 2\n mov 321, %o0\n ta 3\n ta 0\n",
        )
        .unwrap();
        let mut m = RefMachine::new(&img);
        m.run(100).unwrap();
        assert_eq!(m.output_string(), "Hi321");
    }

    #[test]
    fn vector_sum_program() {
        // The paper's Figure 2(a) loop: sum a vector of x elements.
        let src = "
            .org 0x1000
        _start:
            or %g0, 0, %o1       ! sum
            sethi %hi(vec), %o0
            or %o0, %lo(vec), %o3
            or %g0, 0, %o2       ! 4*i
        loop:
            ld [%o2 + %o3], %o0
            add %o1, %o0, %o1
            add %o2, 4, %o2
            subcc %o2, 39, %g0
            ble loop
            nop
            mov %o1, %o0
            ta 0
            .org 0x4000
        vec: .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
        ";
        let img = assemble(src).unwrap();
        let mut m = RefMachine::new(&img);
        match m.run(1000).unwrap() {
            RunOutcome::Halted { code, .. } => assert_eq!(code, 55),
            o => panic!("{o:?}"),
        }
    }
}
