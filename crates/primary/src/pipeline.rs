//! The paper's Table 1 cost model for the Primary Processor.
//!
//! > Primary Processor: four-stage (fetch, decode, execute, write back)
//! > pipeline; no branch prediction hardware; not-taken branches cause a
//! > 3 cycle bubble in the pipeline; instructions following a load,
//! > requiring the data loaded cause a one-cycle bubble in the pipeline.
//!
//! One instruction retires per cycle in steady state; bubbles and cache
//! misses add cycles. Register-window spill/fill traps are
//! non-schedulable events whose cost is configurable.

use dtsvliw_isa::{DynInstr, Instr, ResList};

/// Fixed timing parameters of the Primary Processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimaryTiming {
    /// Pipeline depth (4 in the paper; used for mode-swap costs).
    pub stages: u32,
    /// Bubble cycles for a conditional branch that is **not** taken
    /// (Table 1: 3).
    pub not_taken_bubble: u32,
    /// Bubble cycles when the next instruction consumes a just-loaded
    /// value (Table 1: 1).
    pub load_use_bubble: u32,
    /// Extra cycles for a register-window overflow/underflow trap (16
    /// memory accesses plus trap entry/exit; not in the paper — the
    /// SPECint95 runs there were regular enough not to state it).
    pub window_trap_cycles: u32,
}

impl Default for PrimaryTiming {
    fn default() -> Self {
        PrimaryTiming {
            stages: 4,
            not_taken_bubble: 3,
            load_use_bubble: 1,
            window_trap_cycles: 24,
        }
    }
}

/// Tracks inter-instruction pipeline state (the previous load's
/// destinations) and converts retired instructions to cycle counts.
#[derive(Debug, Clone, Default)]
pub struct PipelineModel {
    timing: PrimaryTiming,
    last_load_writes: Option<ResList>,
}

impl PipelineModel {
    /// Build with the given timing.
    pub fn new(timing: PrimaryTiming) -> Self {
        PipelineModel {
            timing,
            last_load_writes: None,
        }
    }

    /// The timing parameters in use.
    pub fn timing(&self) -> PrimaryTiming {
        self.timing
    }

    /// Forget pipeline history (after a mode swap or trap).
    pub fn reset(&mut self) {
        self.last_load_writes = None;
    }

    /// The previous load's destination list, if the next instruction
    /// could stall on it (machine snapshots: the load-use bubble must
    /// survive a restore for cycle-exact resume).
    pub fn last_load_writes(&self) -> Option<ResList> {
        self.last_load_writes
    }

    /// Restore the state captured by [`PipelineModel::last_load_writes`].
    pub fn set_last_load_writes(&mut self, v: Option<ResList>) {
        self.last_load_writes = v;
    }

    /// Cycles the Primary Processor spends retiring `d`, excluding cache
    /// miss penalties (the machine charges those separately because the
    /// caches are shared with the VLIW Engine).
    pub fn cycles_for(&mut self, d: &DynInstr, window_trap: bool) -> u64 {
        let mut cycles = 1u64;
        if let Some(loaded) = self.last_load_writes.take() {
            if d.reads().intersects(&loaded) {
                cycles += self.timing.load_use_bubble as u64;
            }
        }
        match d.instr {
            Instr::Bicc { .. } | Instr::FBfcc { .. } if d.taken == Some(false) => {
                cycles += self.timing.not_taken_bubble as u64;
            }
            _ => {}
        }
        if window_trap {
            cycles += self.timing.window_trap_cycles as u64;
        }
        if d.instr.is_load() {
            self.last_load_writes = Some(d.writes());
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsvliw_isa::insn::{AluOp, MemOp, Src2};
    use dtsvliw_isa::Cond;

    fn di(instr: Instr) -> DynInstr {
        DynInstr {
            seq: 0,
            pc: 0x1000,
            instr,
            cwp_before: 0,
            cwp_after: 0,
            eff_addr: if instr.is_mem() { Some(0x2000) } else { None },
            taken: None,
            target: None,
            delay_is_nop: true,
        }
    }

    #[test]
    fn steady_state_is_one_cycle() {
        let mut p = PipelineModel::new(PrimaryTiming::default());
        let add = di(Instr::Alu {
            op: AluOp::Add,
            cc: false,
            rd: 9,
            rs1: 9,
            src2: Src2::Imm(1),
        });
        assert_eq!(p.cycles_for(&add, false), 1);
        assert_eq!(p.cycles_for(&add, false), 1);
    }

    #[test]
    fn load_use_bubble_only_when_dependent() {
        let mut p = PipelineModel::new(PrimaryTiming::default());
        let ld = di(Instr::Mem {
            op: MemOp::Ld,
            rd: 9,
            rs1: 10,
            src2: Src2::Imm(0),
        });
        let use_it = di(Instr::Alu {
            op: AluOp::Add,
            cc: false,
            rd: 8,
            rs1: 9,
            src2: Src2::Imm(0),
        });
        let independent = di(Instr::Alu {
            op: AluOp::Add,
            cc: false,
            rd: 8,
            rs1: 10,
            src2: Src2::Imm(0),
        });
        assert_eq!(p.cycles_for(&ld, false), 1);
        assert_eq!(p.cycles_for(&use_it, false), 2, "dependent consumer stalls");
        p.reset();
        assert_eq!(p.cycles_for(&ld, false), 1);
        assert_eq!(p.cycles_for(&independent, false), 1);
        // Bubble only applies to the immediately following instruction.
        let mut p = PipelineModel::new(PrimaryTiming::default());
        p.cycles_for(&ld, false);
        p.cycles_for(&independent, false);
        assert_eq!(p.cycles_for(&use_it, false), 1);
    }

    #[test]
    fn not_taken_branch_bubbles() {
        let mut p = PipelineModel::new(PrimaryTiming::default());
        let mut br = di(Instr::Bicc {
            cond: Cond::E,
            disp22: 4,
        });
        br.taken = Some(false);
        assert_eq!(p.cycles_for(&br, false), 4, "1 + 3 bubble");
        br.taken = Some(true);
        assert_eq!(p.cycles_for(&br, false), 1, "taken branches are free");
    }

    #[test]
    fn window_trap_cost() {
        let mut p = PipelineModel::new(PrimaryTiming::default());
        let save = di(Instr::Save {
            rd: 14,
            rs1: 14,
            src2: Src2::Imm(-96),
        });
        assert_eq!(p.cycles_for(&save, true), 25);
    }
}
