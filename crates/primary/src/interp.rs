//! Architectural interpreter: one SPARC instruction per step.

use dtsvliw_isa::alu::{exec_alu, exec_fp};
use dtsvliw_isa::encode::decode;
use dtsvliw_isa::insn::{FpOp, Instr, Src2};
use dtsvliw_isa::regs::{r, restore_cwp, save_cwp};
use dtsvliw_isa::{ArchState, DynInstr};
use dtsvliw_mem::Memory;

/// Program termination, reported through `ta` traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// `ta EXIT`: normal exit with the value of `%o0`.
    Exit(u32),
}

/// What one interpreter step produced.
#[derive(Debug, Clone)]
pub struct Step {
    /// The retired instruction with its observed execution facts.
    pub dyn_instr: DynInstr,
    /// A register-window overflow/underflow trap fired as part of a
    /// `save`/`restore` (16 extra memory accesses were performed).
    pub window_trap: bool,
    /// Bytes appended to the console by a PUTC/PUTU trap.
    pub output: Option<Vec<u8>>,
    /// Program halted (the instruction still retires).
    pub halt: Option<Halt>,
}

/// Interpreter-detected errors: all of them indicate a broken program or
/// a simulator bug and abort the simulation loudly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepError {
    /// Undecodable instruction word.
    Illegal {
        /// Faulting PC.
        pc: u32,
        /// The raw word.
        word: u32,
    },
    /// Misaligned memory access.
    Misaligned {
        /// Faulting PC.
        pc: u32,
        /// Effective address.
        addr: u32,
        /// Access size.
        size: u8,
    },
    /// `ta FAIL`: a workload self-check failed.
    SelfCheckFailed {
        /// Faulting PC.
        pc: u32,
        /// Failure site id from `%o0`.
        site: u32,
    },
    /// Unknown trap code.
    BadTrap {
        /// Faulting PC.
        pc: u32,
        /// The code.
        code: u8,
    },
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::Illegal { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at {pc:#x}")
            }
            StepError::Misaligned { pc, addr, size } => {
                write!(f, "misaligned {size}-byte access to {addr:#x} at {pc:#x}")
            }
            StepError::SelfCheckFailed { pc, site } => {
                write!(f, "workload self-check failed (site {site}) at {pc:#x}")
            }
            StepError::BadTrap { pc, code } => write!(f, "unknown trap {code} at {pc:#x}"),
        }
    }
}

impl std::error::Error for StepError {}

fn src2_val(state: &ArchState, s: Src2) -> u32 {
    match s {
        Src2::Reg(rr) => state.get(rr),
        Src2::Imm(i) => i as u32,
    }
}

/// Spill the oldest resident window's locals and ins to that window's
/// stack pointer (window-overflow trap). 16 word stores.
fn spill_oldest(state: &mut ArchState, mem: &mut Memory) {
    let w = state.oldest_window();
    let sp = state.get_w(w, r::SP);
    for k in 0..8u8 {
        mem.write_u32(sp.wrapping_add(4 * k as u32), state.get_w(w, r::L0 + k));
        mem.write_u32(
            sp.wrapping_add(32 + 4 * k as u32),
            state.get_w(w, r::I0 + k),
        );
    }
    state.resident -= 1;
}

/// Fill the window being restored into from the current frame pointer
/// (window-underflow trap). 16 word loads.
fn fill_next(state: &mut ArchState, mem: &Memory) {
    let w = restore_cwp(state.cwp);
    let fp = state.get(r::FP);
    for k in 0..8u8 {
        state.set_w(w, r::L0 + k, mem.read_u32(fp.wrapping_add(4 * k as u32)));
        state.set_w(
            w,
            r::I0 + k,
            mem.read_u32(fp.wrapping_add(32 + 4 * k as u32)),
        );
    }
    state.resident += 1;
}

/// Execute exactly one instruction at `state.pc`.
///
/// Advances the `pc`/`npc` pair with SPARC delayed-transfer semantics:
/// a control transfer at `pc` sets `npc`'s successor, so the instruction
/// in the delay slot executes before the target.
pub fn step(state: &mut ArchState, mem: &mut Memory, seq: u64) -> Result<Step, StepError> {
    let pc = state.pc;
    let word = mem.read_u32(pc);
    let instr = decode(word);
    if let Instr::Illegal(w) = instr {
        return Err(StepError::Illegal { pc, word: w });
    }

    let cwp_before = state.cwp;
    let mut d = DynInstr {
        seq,
        pc,
        instr,
        cwp_before,
        cwp_after: cwp_before,
        eff_addr: None,
        taken: None,
        target: None,
        delay_is_nop: true,
    };
    let mut window_trap = false;
    let mut output = None;
    let mut halt = None;
    // Default control flow: fall through the delay-slot pair.
    let mut next_npc = state.npc.wrapping_add(4);
    let mut is_cti = false;

    match instr {
        Instr::Alu {
            op,
            cc,
            rd,
            rs1,
            src2,
        } => {
            let a = state.get(rs1);
            let b = src2_val(state, src2);
            let res = exec_alu(op, a, b, state.icc, state.y);
            state.set(rd, res.value);
            if cc {
                state.icc = res.icc;
            }
            if op == dtsvliw_isa::insn::AluOp::MulScc {
                state.y = res.y;
            }
        }
        Instr::Sethi { rd, imm22 } => state.set(rd, imm22 << 10),
        Instr::Mem { op, rd, rs1, src2 } => {
            let addr = state.get(rs1).wrapping_add(src2_val(state, src2));
            let size = op.size();
            if !addr.is_multiple_of(size as u32) {
                return Err(StepError::Misaligned { pc, addr, size });
            }
            d.eff_addr = Some(addr);
            use dtsvliw_isa::insn::MemOp::*;
            match op {
                Ld => state.set(rd, mem.read_u32(addr)),
                Ldub => state.set(rd, mem.read_u8(addr) as u32),
                Ldsb => state.set(rd, mem.read_u8(addr) as i8 as i32 as u32),
                Lduh => state.set(rd, mem.read_u16(addr) as u32),
                Ldsh => state.set(rd, mem.read_u16(addr) as i16 as i32 as u32),
                St => mem.write_u32(addr, state.get(rd)),
                Stb => mem.write_u8(addr, state.get(rd) as u8),
                Sth => mem.write_u16(addr, state.get(rd) as u16),
                Ldf => state.fp[rd as usize] = mem.read_u32(addr),
                Stf => mem.write_u32(addr, state.fp[rd as usize]),
            }
        }
        Instr::Bicc { cond, disp22 } => {
            is_cti = true;
            let taken = cond.eval(state.icc);
            d.taken = Some(taken);
            if taken {
                let t = pc.wrapping_add((disp22 as u32).wrapping_mul(4));
                d.target = Some(t);
                next_npc = t;
            }
        }
        Instr::FBfcc { cond, disp22 } => {
            is_cti = true;
            let taken = cond.eval(state.fcc);
            d.taken = Some(taken);
            if taken {
                let t = pc.wrapping_add((disp22 as u32).wrapping_mul(4));
                d.target = Some(t);
                next_npc = t;
            }
        }
        Instr::Call { disp30 } => {
            is_cti = true;
            state.set(r::O7, pc);
            let t = pc.wrapping_add((disp30 as u32).wrapping_mul(4));
            d.target = Some(t);
            d.taken = Some(true);
            next_npc = t;
        }
        Instr::Jmpl { rd, rs1, src2 } => {
            is_cti = true;
            let t = state.get(rs1).wrapping_add(src2_val(state, src2));
            if !t.is_multiple_of(4) {
                return Err(StepError::Misaligned {
                    pc,
                    addr: t,
                    size: 4,
                });
            }
            state.set(rd, pc);
            d.target = Some(t);
            d.taken = Some(true);
            next_npc = t;
        }
        Instr::Save { rd, rs1, src2 } => {
            let a = state.get(rs1);
            let b = src2_val(state, src2);
            if state.resident == ArchState::MAX_RESIDENT {
                spill_oldest(state, mem);
                window_trap = true;
            }
            state.cwp = save_cwp(state.cwp);
            state.resident += 1;
            state.set(rd, a.wrapping_add(b));
            d.cwp_after = state.cwp;
        }
        Instr::Restore { rd, rs1, src2 } => {
            let a = state.get(rs1);
            let b = src2_val(state, src2);
            if state.resident == 1 {
                fill_next(state, mem);
                window_trap = true;
            }
            state.cwp = restore_cwp(state.cwp);
            state.resident -= 1;
            state.set(rd, a.wrapping_add(b));
            d.cwp_after = state.cwp;
        }
        Instr::Fpop { op, rd, rs1, rs2 } => {
            let res = exec_fp(
                op,
                state.fp[rs1 as usize],
                state.fp[rs2 as usize],
                state.fcc,
            );
            if op == FpOp::FCmps {
                state.fcc = res.fcc;
            } else {
                state.fp[rd as usize] = res.value;
            }
        }
        Instr::RdY { rd } => state.set(rd, state.y),
        Instr::WrY { rs1, src2 } => {
            // SPARC defines wr as rs1 XOR src2.
            state.y = state.get(rs1) ^ src2_val(state, src2);
        }
        Instr::Trap { code } => {
            let o0 = state.get(r::O0);
            match code {
                crate::trap::EXIT => halt = Some(Halt::Exit(o0)),
                crate::trap::FAIL => return Err(StepError::SelfCheckFailed { pc, site: o0 }),
                crate::trap::PUTC => output = Some(vec![o0 as u8]),
                crate::trap::PUTU => output = Some(o0.to_string().into_bytes()),
                code => return Err(StepError::BadTrap { pc, code }),
            }
        }
        Instr::Illegal(_) => unreachable!("checked above"),
    }

    if is_cti {
        d.delay_is_nop = decode(mem.read_u32(pc.wrapping_add(4))).is_nop();
    }

    state.pc = state.npc;
    state.npc = next_npc;
    Ok(Step {
        dyn_instr: d,
        window_trap,
        output,
        halt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsvliw_asm::assemble;
    use dtsvliw_isa::regs::NWINDOWS;

    fn machine(src: &str) -> (ArchState, Memory) {
        let img = assemble(src).expect("assembles");
        let mut mem = Memory::new();
        img.load_into(&mut mem);
        (ArchState::new(img.entry), mem)
    }

    fn run_n(state: &mut ArchState, mem: &mut Memory, n: usize) {
        for i in 0..n {
            step(state, mem, i as u64).unwrap();
        }
    }

    #[test]
    fn delay_slot_executes_before_target() {
        let (mut st, mut mem) = machine(
            "_start: ba t\n mov 1, %o0   ! delay slot: must execute\n mov 9, %o0\nt: nop\n",
        );
        run_n(&mut st, &mut mem, 3); // ba, delay, nop-at-target
        assert_eq!(st.get(r::O0), 1);
    }

    #[test]
    fn not_taken_branch_falls_through() {
        let (mut st, mut mem) =
            machine("_start: cmp %g0, 1\n be t\n nop\n mov 5, %o1\nt: mov 7, %o2\n");
        run_n(&mut st, &mut mem, 4);
        assert_eq!(st.get(r::O1), 5);
    }

    #[test]
    fn call_links_o7_and_ret_returns() {
        let (mut st, mut mem) =
            machine("_start: call f\n nop\n mov 42, %o1\n ta 0\nf: retl\n nop\n");
        // call, delay, retl, delay, mov
        run_n(&mut st, &mut mem, 5);
        assert_eq!(st.get(r::O1), 42);
        assert_eq!(st.get(r::O7), 0x1000);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let (mut st, mut mem) = machine(
            "_start: set 0x2000, %o0\n mov 0x55, %o1\n stb %o1, [%o0]\n ldsb [%o0], %o2\n sth %o1, [%o0 + 2]\n lduh [%o0 + 2], %o3\n",
        );
        run_n(&mut st, &mut mem, 7); // set = 2 instrs
        assert_eq!(st.get(r::O2), 0x55);
        assert_eq!(st.get(r::O3), 0x55);
    }

    #[test]
    fn signed_byte_load_extends() {
        let (mut st, mut mem) = machine(
            "_start: set 0x2000, %o0\n mov -1, %o1\n stb %o1, [%o0]\n ldsb [%o0], %o2\n ldub [%o0], %o3\n",
        );
        run_n(&mut st, &mut mem, 6);
        assert_eq!(st.get(r::O2), 0xffff_ffff);
        assert_eq!(st.get(r::O3), 0xff);
    }

    #[test]
    fn misaligned_access_errors() {
        let (mut st, mut mem) = machine("_start: set 0x2001, %o0\n ld [%o0], %o1\n");
        run_n(&mut st, &mut mem, 2);
        let e = step(&mut st, &mut mem, 2).unwrap_err();
        assert!(matches!(e, StepError::Misaligned { addr: 0x2001, .. }));
    }

    #[test]
    fn save_restore_pass_values_through_windows() {
        let (mut st, mut mem) = machine(
            "_start: set 0x9000, %sp\n mov 11, %o0\n save %sp, -96, %sp\n add %i0, 1, %i0\n restore %i0, 0, %o0\n",
        );
        run_n(&mut st, &mut mem, 6);
        assert_eq!(st.get(r::O0), 12, "restore's add crosses back");
        assert_eq!(st.cwp, 0);
        assert_eq!(st.resident, 1);
    }

    #[test]
    fn exit_trap_halts_with_code() {
        let (mut st, mut mem) = machine("_start: mov 3, %o0\n ta 0\n");
        step(&mut st, &mut mem, 0).unwrap();
        let s = step(&mut st, &mut mem, 1).unwrap();
        assert_eq!(s.halt, Some(Halt::Exit(3)));
    }

    #[test]
    fn fail_trap_is_an_error() {
        let (mut st, mut mem) = machine("_start: mov 77, %o0\n ta 1\n");
        step(&mut st, &mut mem, 0).unwrap();
        let e = step(&mut st, &mut mem, 1).unwrap_err();
        assert_eq!(
            e,
            StepError::SelfCheckFailed {
                pc: 0x1004,
                site: 77
            }
        );
    }

    #[test]
    fn window_overflow_spills_and_refills() {
        // Recurse deeper than the register file and come back: locals
        // must survive via spill/fill.
        let depth = NWINDOWS + 3;
        let src = format!(
            "_start:
                set 0x20000, %sp
                mov {depth}, %o0
                call rec
                nop
                ! %o0 = sum of depths = depth + depth-1 + ... + 1
                ta 0
            rec:
                save %sp, -96, %sp
                mov %i0, %l0          ! keep depth in a local
                cmp %i0, 1
                ble base
                nop
                sub %i0, 1, %o0
                call rec
                nop
                add %o0, %l0, %i0    ! child sum + my depth
                ret
                restore %i0, 0, %o0
            base:
                mov %l0, %i0
                ret
                restore %i0, 0, %o0
            ",
        );
        let (mut st, mut mem) = machine(&src);
        let mut traps = 0;
        for i in 0..100_000u64 {
            let s = step(&mut st, &mut mem, i).unwrap();
            traps += s.window_trap as u32;
            if let Some(Halt::Exit(code)) = s.halt {
                let expect: u32 = (1..=depth as u32).sum();
                assert_eq!(code, expect);
                assert!(
                    traps > 0,
                    "recursion of {depth} must overflow {NWINDOWS} windows"
                );
                return;
            }
        }
        panic!("did not halt");
    }

    #[test]
    fn mulscc_umul_routine_in_asm() {
        // Software unsigned multiply: 32 mulscc steps + final shift,
        // mirroring the .umul library routine. Result low word in %o0.
        let src = "
            _start:
                set 51234, %o0
                set 77777, %o1
                call umul
                nop
                ta 0
            umul:
                wr %o1, 0, %y
                andcc %g0, %g0, %o4   ! clear partial product and icc
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %o0, %o4
                mulscc %o4, %g0, %o4
                retl
                rd %y, %o0
        ";
        let (mut st, mut mem) = machine(src);
        for i in 0..200u64 {
            if let Some(Halt::Exit(code)) = step(&mut st, &mut mem, i).unwrap().halt {
                assert_eq!(code, 51234u32.wrapping_mul(77777));
                return;
            }
        }
        panic!("did not halt");
    }

    #[test]
    fn delay_is_nop_flag() {
        let (mut st, mut mem) = machine("_start: ba t\n mov 1, %o0\nt: nop\n");
        let s = step(&mut st, &mut mem, 0).unwrap();
        assert!(!s.dyn_instr.delay_is_nop, "mov in delay slot");
        let (mut st2, mut mem2) = machine("_start: ba t\n nop\nt: nop\n");
        let s = step(&mut st2, &mut mem2, 0).unwrap();
        assert!(s.dyn_instr.delay_is_nop);
    }
}
