//! The Primary Processor of the DTSVLIW machine.
//!
//! "The Primary Processor is a simple pipelined processor that is capable
//! of executing all instructions defined in the SPARC ISA" (paper §3.1).
//! This crate provides:
//!
//! * [`interp`]: the architectural interpreter — one instruction per
//!   [`interp::step`], with full delayed-control-transfer semantics,
//!   register-window overflow/underflow spill and fill, and the trap
//!   interface used for program exit, self-check failure and console
//!   output;
//! * [`pipeline`]: the paper's Table 1 cost model — a four-stage
//!   (fetch, decode, execute, write-back) pipeline with no branch
//!   prediction, a 3-cycle bubble on not-taken branches and a 1-cycle
//!   load-use bubble;
//! * [`refmach`]: the *test machine* of the paper's §4 — a standalone
//!   sequential SPARC machine used both to co-simulate/verify the
//!   DTSVLIW and to count the sequential instructions that define the
//!   IPC numerator.

pub mod interp;
pub mod pipeline;
pub mod refmach;

pub use interp::{step, Halt, Step, StepError};
pub use pipeline::{PipelineModel, PrimaryTiming};
pub use refmach::{RefMachine, RunOutcome};

/// Trap codes understood by the simulated machine (`ta code`).
pub mod trap {
    /// Normal program exit; the exit value is in `%o0`.
    pub const EXIT: u8 = 0;
    /// Self-check failure; the failure site id is in `%o0`.
    pub const FAIL: u8 = 1;
    /// Write the low byte of `%o0` to the console buffer.
    pub const PUTC: u8 = 2;
    /// Print `%o0` as an unsigned decimal to the console buffer.
    pub const PUTU: u8 = 3;
}
