//! Additional ISA coverage on the sequential machine: indirect calls
//! through register targets, `%y` semantics, window wrap-around over
//! long call chains, and the PUTU decimal formatter.

use dtsvliw_asm::assemble;
use dtsvliw_isa::regs::{r, NWINDOWS};
use dtsvliw_primary::{RefMachine, RunOutcome};

fn run(src: &str) -> (u32, RefMachine) {
    let img = assemble(src).unwrap();
    let mut m = RefMachine::new(&img);
    match m.run(1_000_000).unwrap() {
        RunOutcome::Halted { code, .. } => (code, m),
        RunOutcome::OutOfFuel => panic!("did not halt"),
    }
}

#[test]
fn indirect_call_through_function_pointer_table() {
    // A jump table: call the k-th function through jmpl, linking %o7.
    let src = "
_start:
    set table, %l0
    mov 0, %l1          ! accumulated
    mov 0, %l2          ! index
loop:
    sll %l2, 2, %o5
    ld [%l0 + %o5], %g1
    jmpl %g1, %o7       ! indirect call: callee returns via retl
    nop
    add %l1, %o0, %l1
    add %l2, 1, %l2
    cmp %l2, 3
    bl loop
    nop
    mov %l1, %o0
    ta 0
f1: retl
    mov 10, %o0
f2: retl
    mov 200, %o0
f3: retl
    mov 3000, %o0
    .align 4
table:
    .word f1, f2, f3
";
    let (code, _) = run(src);
    assert_eq!(code, 3210);
}

#[test]
fn wry_is_xor_semantics() {
    // SPARC defines `wr rs1, src2, %y` as rs1 XOR src2.
    let src = "
_start:
    set 0xff00, %o1
    wr %o1, 0xff, %y
    rd %y, %o0
    ta 0
";
    let (code, _) = run(src);
    assert_eq!(code, 0xffff);
}

#[test]
fn deep_call_chain_wraps_every_window() {
    // Chain deeper than 3x the window count: every physical window is
    // reused and refilled; each frame's local must survive.
    let depth = 3 * NWINDOWS as u32 + 2;
    let src = format!(
        "
_start:
    set 0x80000, %sp
    mov {depth}, %o0
    call chain
    nop
    ta 0
chain:
    save %sp, -96, %sp
    mov %i0, %l3          ! this frame's value
    cmp %i0, 0
    be bottom
    nop
    sub %i0, 1, %o0
    call chain
    nop
    ! child result + my local (spilled/refilled across the wrap)
    add %o0, %l3, %i0
    ret
    restore %i0, 0, %o0
bottom:
    mov 0, %i0
    ret
    restore %i0, 0, %o0
"
    );
    let (code, m) = run(&src);
    assert_eq!(code, (1..=depth).sum::<u32>());
    assert_eq!(m.state.cwp, 0, "returned to the entry window");
    assert_eq!(m.state.resident, 1);
}

#[test]
fn putu_formats_decimals() {
    let src = "
_start:
    mov 0, %o0
    ta 3
    set 1000000, %o0
    ta 3
    set 4294967295, %o0
    ta 3
    ta 0
";
    let (_, m) = run(src);
    assert_eq!(m.output_string(), "010000004294967295");
}

#[test]
fn g0_targets_discard_in_every_class() {
    let src = "
_start:
    set 0x2000, %o1
    add %o1, 5, %g0       ! alu write to g0
    ld [%o1], %g0         ! load to g0
    sethi 0x3f, %g0       ! sethi to g0 (a long nop)
    mov 77, %o0
    ta 0
";
    let (code, m) = run(src);
    assert_eq!(code, 77);
    assert_eq!(m.state.get(r::G0), 0);
}

#[test]
fn not_taken_conditional_costs_show_in_machine_cycles() {
    // Same instruction counts, opposite branch bias: the not-taken-heavy
    // variant must burn more cycles on the full machine (Table 1's
    // 3-cycle bubble).
    use dtsvliw_core::{Machine, MachineConfig};
    let biased = |cond: &str| {
        format!(
            "
_start:
    mov 400, %o1
loop:
    subcc %o1, 1, %o1
    {cond} skip           ! direction depends on the predicate
    nop
    nop
skip:
    cmp %o1, 0
    bne loop
    nop
    ta 0
"
        )
    };
    // `bne skip` is taken until the last iteration; `be skip` never is.
    let mut cfg = MachineConfig::ideal(1, 1);
    cfg.vliw_cache = dtsvliw_vliw::VliwCacheConfig {
        size_bytes: 6,
        ways: 1,
        width: 1,
        height: 1,
    };
    let run_cycles = |src: &str| {
        let img = assemble(src).unwrap();
        let mut m = Machine::new(cfg.clone(), &img);
        m.run(100_000).unwrap();
        m.stats().cycles
    };
    let taken_heavy = run_cycles(&biased("bne"));
    let nottaken_heavy = run_cycles(&biased("be"));
    assert!(
        nottaken_heavy > taken_heavy,
        "not-taken bubbles must show: {nottaken_heavy} vs {taken_heavy}"
    );
}
