//! Two-pass assembly: pass 1 sizes statements and collects labels,
//! pass 2 encodes.

use crate::image::Image;
use dtsvliw_isa::encode::encode;
use dtsvliw_isa::insn::{AluOp, FpOp, Instr, MemOp, Src2};
use dtsvliw_isa::regs::parse_reg;
use dtsvliw_isa::{Cond, FCond};
use std::collections::HashMap;
use std::fmt;

/// Default base address of the first section.
pub const DEFAULT_ORG: u32 = 0x1000;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

type Result<T> = std::result::Result<T, AsmError>;

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

/// Assemble `src` with the first section at the default origin
/// (`0x1000`).
pub fn assemble(src: &str) -> Result<Image> {
    assemble_at(src, DEFAULT_ORG)
}

/// Assemble `src` with the first section at `org`.
pub fn assemble_at(src: &str, org: u32) -> Result<Image> {
    let stmts = parse_lines(src)?;
    let symbols = pass1(&stmts, org)?;
    pass2(&stmts, org, symbols)
}

#[derive(Debug)]
enum Stmt<'a> {
    Label(&'a str),
    Directive(&'a str, Vec<&'a str>),
    Insn(&'a str, Vec<&'a str>),
}

struct Line<'a> {
    no: usize,
    stmt: Stmt<'a>,
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '!' | ';' | '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Split an operand field on top-level commas (commas inside quotes or
/// brackets stay).
fn split_operands(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut depth, mut in_str, mut start) = (0i32, false, 0usize);
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '[' | '(' if !in_str => depth += 1,
            ']' | ')' if !in_str => depth -= 1,
            ',' if depth == 0 && !in_str => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() || !out.is_empty() {
        out.push(last);
    }
    out
}

fn parse_lines(src: &str) -> Result<Vec<Line<'_>>> {
    let mut lines = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let no = idx + 1;
        let mut rest = strip_comment(raw).trim();
        // Leading labels.
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let head = head.trim();
            if head.is_empty()
                || !head
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            lines.push(Line {
                no,
                stmt: Stmt::Label(head),
            });
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let (mnemonic, args) = match rest.find(char::is_whitespace) {
            Some(sp) => (&rest[..sp], rest[sp..].trim()),
            None => (rest, ""),
        };
        let operands = split_operands(args);
        let stmt = if let Some(d) = mnemonic.strip_prefix('.') {
            Stmt::Directive(d, operands)
        } else {
            Stmt::Insn(mnemonic, operands)
        };
        lines.push(Line { no, stmt });
    }
    Ok(lines)
}

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

fn parse_number(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest.trim()),
        None => (false, s),
    };
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(c) = s.strip_prefix('\'').and_then(|t| t.strip_suffix('\'')) {
        let c = match c {
            "\\n" => '\n',
            "\\t" => '\t',
            "\\0" => '\0',
            "\\\\" => '\\',
            _ => c.chars().next()?,
        };
        c as i64
    } else {
        s.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// Evaluate `num`, `sym`, `sym+num`, `sym-num`, `num+num`.
fn eval_expr(s: &str, symbols: &HashMap<String, u32>, line: usize) -> Result<i64> {
    let s = s.trim();
    if let Some(v) = parse_number(s) {
        return Ok(v);
    }
    // split at the last top-level + or - that is not a leading sign
    for (i, c) in s.char_indices().rev() {
        if (c == '+' || c == '-') && i > 0 {
            let left = s[..i].trim();
            let right = s[i + 1..].trim();
            if left.is_empty() || right.is_empty() {
                continue;
            }
            // Only treat as binary op when left isn't itself an operator end.
            let l = eval_expr(left, symbols, line)?;
            let r = eval_expr(right, symbols, line)?;
            return Ok(if c == '+' { l + r } else { l - r });
        }
    }
    match symbols.get(s) {
        Some(&v) => Ok(v as i64),
        None => err(line, format!("undefined symbol `{s}`")),
    }
}

/// A `set`-style value: either a syntactic literal that fits simm13 (one
/// instruction) or anything else (sethi/or pair).
fn set_is_short(arg: &str) -> bool {
    parse_number(arg).is_some_and(|v| (-4096..=4095).contains(&v))
}

// ---------------------------------------------------------------------
// Operand helpers
// ---------------------------------------------------------------------

fn reg(s: &str, line: usize) -> Result<u8> {
    parse_reg(s.trim()).map_or_else(|| err(line, format!("bad register `{s}`")), Ok)
}

fn fp_reg(s: &str, line: usize) -> Result<u8> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix("%f").and_then(|n| n.parse::<u8>().ok()) {
        if n < 32 {
            return Ok(n);
        }
    }
    err(line, format!("bad fp register `{s}`"))
}

fn simm13(v: i64, line: usize) -> Result<i32> {
    if (-4096..=4095).contains(&v) {
        Ok(v as i32)
    } else {
        err(line, format!("immediate {v} does not fit simm13"))
    }
}

fn src2(s: &str, symbols: &HashMap<String, u32>, line: usize) -> Result<Src2> {
    let s = s.trim();
    if s.starts_with('%') && !s.starts_with("%lo") && !s.starts_with("%hi") {
        return Ok(Src2::Reg(reg(s, line)?));
    }
    if let Some(inner) = s.strip_prefix("%lo(").and_then(|t| t.strip_suffix(')')) {
        let v = eval_expr(inner, symbols, line)?;
        return Ok(Src2::Imm((v & 0x3ff) as i32));
    }
    Ok(Src2::Imm(simm13(eval_expr(s, symbols, line)?, line)?))
}

/// Parse an address operand `reg`, `reg + reg`, `reg +/- expr`,
/// `reg + %lo(sym)`, or a bare expression (uses `%g0` as base).
fn address(s: &str, symbols: &HashMap<String, u32>, line: usize) -> Result<(u8, Src2)> {
    let s = s.trim();
    if !s.starts_with('%') {
        return Ok((0, src2(s, symbols, line)?));
    }
    // find top-level + or - after the register
    let mut depth = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            '+' | '-' if depth == 0 && i > 0 => {
                let base = reg(&s[..i], line)?;
                let rest = s[i..].trim();
                let rest = if let Some(r) = rest.strip_prefix('+') {
                    r.trim()
                } else {
                    rest
                };
                return Ok((base, src2(rest, symbols, line)?));
            }
            _ => {}
        }
    }
    Ok((reg(s, line)?, Src2::Imm(0)))
}

fn mem_operand(s: &str, symbols: &HashMap<String, u32>, line: usize) -> Result<(u8, Src2)> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| AsmError {
            line,
            msg: format!("expected [address], got `{s}`"),
        })?;
    address(inner, symbols, line)
}

// ---------------------------------------------------------------------
// Mnemonic tables
// ---------------------------------------------------------------------

fn alu_op(m: &str) -> Option<(AluOp, bool)> {
    Some(match m {
        "add" => (AluOp::Add, false),
        "addcc" => (AluOp::Add, true),
        "sub" => (AluOp::Sub, false),
        "subcc" => (AluOp::Sub, true),
        "and" => (AluOp::And, false),
        "andcc" => (AluOp::And, true),
        "andn" => (AluOp::Andn, false),
        "andncc" => (AluOp::Andn, true),
        "or" => (AluOp::Or, false),
        "orcc" => (AluOp::Or, true),
        "orn" => (AluOp::Orn, false),
        "orncc" => (AluOp::Orn, true),
        "xor" => (AluOp::Xor, false),
        "xorcc" => (AluOp::Xor, true),
        "xnor" => (AluOp::Xnor, false),
        "xnorcc" => (AluOp::Xnor, true),
        "sll" => (AluOp::Sll, false),
        "srl" => (AluOp::Srl, false),
        "sra" => (AluOp::Sra, false),
        "mulscc" => (AluOp::MulScc, true),
        _ => return None,
    })
}

fn mem_op(m: &str) -> Option<MemOp> {
    Some(match m {
        "ld" => MemOp::Ld,
        "ldub" => MemOp::Ldub,
        "ldsb" => MemOp::Ldsb,
        "lduh" => MemOp::Lduh,
        "ldsh" => MemOp::Ldsh,
        "st" => MemOp::St,
        "stb" => MemOp::Stb,
        "sth" => MemOp::Sth,
        "ldf" => MemOp::Ldf,
        "stf" => MemOp::Stf,
        _ => return None,
    })
}

fn branch_cond(m: &str) -> Option<Cond> {
    Some(match m {
        "ba" | "b" => Cond::A,
        "bn" => Cond::N,
        "be" | "bz" => Cond::E,
        "bne" | "bnz" => Cond::Ne,
        "ble" => Cond::Le,
        "bl" => Cond::L,
        "bleu" => Cond::Leu,
        "bcs" | "blu" => Cond::Cs,
        "bneg" => Cond::Neg,
        "bvs" => Cond::Vs,
        "bg" => Cond::G,
        "bge" => Cond::Ge,
        "bgu" => Cond::Gu,
        "bcc" | "bgeu" => Cond::Cc,
        "bpos" => Cond::Pos,
        "bvc" => Cond::Vc,
        _ => return None,
    })
}

fn fbranch_cond(m: &str) -> Option<FCond> {
    Some(match m {
        "fba" => FCond::A,
        "fbn" => FCond::N,
        "fbe" => FCond::E,
        "fbne" => FCond::Ne,
        "fbl" => FCond::L,
        "fbg" => FCond::G,
        "fbge" => FCond::Ge,
        "fble" => FCond::Le,
        _ => return None,
    })
}

fn fp_op(m: &str) -> Option<FpOp> {
    Some(match m {
        "fadds" => FpOp::FAdds,
        "fsubs" => FpOp::FSubs,
        "fmuls" => FpOp::FMuls,
        "fdivs" => FpOp::FDivs,
        "fmovs" => FpOp::FMovs,
        "fnegs" => FpOp::FNegs,
        "fabss" => FpOp::FAbss,
        "fcmps" => FpOp::FCmps,
        "fitos" => FpOp::FItos,
        "fstoi" => FpOp::FStoi,
        _ => return None,
    })
}

// ---------------------------------------------------------------------
// Pass 1: sizes and labels
// ---------------------------------------------------------------------

fn stmt_size(stmt: &Stmt<'_>, lc: u32, line: usize) -> Result<u32> {
    Ok(match stmt {
        Stmt::Label(_) => 0,
        Stmt::Directive(d, args) => match *d {
            "org" | "global" | "globl" | "text" | "data" | "section" => 0,
            "align" => {
                let a = parse_number(args.first().copied().unwrap_or("4"))
                    .filter(|a| *a > 0 && (*a as u64).is_power_of_two())
                    .ok_or_else(|| AsmError {
                        line,
                        msg: ".align needs a power of two".into(),
                    })? as u32;
                (a - (lc % a)) % a
            }
            "word" => 4 * args.len() as u32,
            "half" => 2 * args.len() as u32,
            "byte" => args.len() as u32,
            "space" | "skip" => parse_number(args.first().copied().unwrap_or("0"))
                .filter(|v| *v >= 0)
                .ok_or_else(|| AsmError {
                    line,
                    msg: ".space needs a size".into(),
                })? as u32,
            "ascii" | "asciz" => {
                let s = string_literal(args.first().copied().unwrap_or(""), line)?;
                (s.len() + usize::from(*d == "asciz")) as u32
            }
            other => return err(line, format!("unknown directive .{other}")),
        },
        Stmt::Insn(m, args) => match *m {
            "set" => {
                if args.len() == 2 && set_is_short(args[0]) {
                    4
                } else {
                    8
                }
            }
            _ => 4,
        },
    })
}

fn string_literal(s: &str, line: usize) -> Result<Vec<u8>> {
    let inner = s
        .trim()
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| AsmError {
            line,
            msg: format!("expected string literal, got `{s}`"),
        })?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('t') => out.push(b'\t'),
                Some('0') => out.push(0),
                Some('\\') => out.push(b'\\'),
                Some('"') => out.push(b'"'),
                other => return err(line, format!("bad escape `\\{other:?}`")),
            }
        } else {
            out.push(c as u8);
        }
    }
    Ok(out)
}

fn pass1(stmts: &[Line<'_>], org: u32) -> Result<HashMap<String, u32>> {
    let mut symbols = HashMap::new();
    let mut lc = org;
    for l in stmts {
        match &l.stmt {
            Stmt::Label(name) => {
                if symbols.insert((*name).to_string(), lc).is_some() {
                    return err(l.no, format!("duplicate label `{name}`"));
                }
            }
            Stmt::Directive("org", args) => {
                lc = parse_number(args.first().copied().unwrap_or("")).ok_or_else(|| AsmError {
                    line: l.no,
                    msg: ".org needs a literal".into(),
                })? as u32;
            }
            s => lc = lc.wrapping_add(stmt_size(s, lc, l.no)?),
        }
    }
    Ok(symbols)
}

// ---------------------------------------------------------------------
// Pass 2: emission
// ---------------------------------------------------------------------

struct Emitter {
    sections: Vec<(u32, Vec<u8>)>,
    base: u32,
    bytes: Vec<u8>,
}

impl Emitter {
    fn lc(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }

    fn flush(&mut self, new_base: u32) {
        if !self.bytes.is_empty() {
            self.sections
                .push((self.base, std::mem::take(&mut self.bytes)));
        }
        self.base = new_base;
    }

    fn word(&mut self, w: u32) {
        self.bytes.extend_from_slice(&w.to_be_bytes());
    }

    fn instr(&mut self, i: &Instr) {
        self.word(encode(i));
    }
}

fn branch_disp22(target: i64, pc: u32, line: usize) -> Result<i32> {
    let delta = target - pc as i64;
    if delta % 4 != 0 {
        return err(line, "branch target not word aligned");
    }
    let disp = delta / 4;
    if !(-(1 << 21)..1 << 21).contains(&disp) {
        return err(line, format!("branch displacement {disp} out of range"));
    }
    Ok(disp as i32)
}

fn pass2(stmts: &[Line<'_>], org: u32, symbols: HashMap<String, u32>) -> Result<Image> {
    let mut e = Emitter {
        sections: Vec::new(),
        base: org,
        bytes: Vec::new(),
    };
    let mut first_insn: Option<u32> = None;

    for l in stmts {
        let line = l.no;
        match &l.stmt {
            Stmt::Label(_) => {}
            Stmt::Directive(d, args) => match *d {
                "org" => {
                    let v = parse_number(args[0]).unwrap() as u32;
                    e.flush(v);
                }
                "global" | "globl" | "text" | "data" | "section" => {}
                "align" => {
                    let n = stmt_size(&l.stmt, e.lc(), line)?;
                    e.bytes.extend(std::iter::repeat_n(0, n as usize));
                }
                "word" => {
                    for a in args {
                        let v = eval_expr(a, &symbols, line)?;
                        e.word(v as u32);
                    }
                }
                "half" => {
                    for a in args {
                        let v = eval_expr(a, &symbols, line)? as u16;
                        e.bytes.extend_from_slice(&v.to_be_bytes());
                    }
                }
                "byte" => {
                    for a in args {
                        e.bytes.push(eval_expr(a, &symbols, line)? as u8);
                    }
                }
                "space" | "skip" => {
                    let n = stmt_size(&l.stmt, e.lc(), line)?;
                    e.bytes.extend(std::iter::repeat_n(0, n as usize));
                }
                "ascii" | "asciz" => {
                    let mut s = string_literal(args.first().copied().unwrap_or(""), line)?;
                    if *d == "asciz" {
                        s.push(0);
                    }
                    e.bytes.extend_from_slice(&s);
                }
                _ => unreachable!("pass1 validated directives"),
            },
            Stmt::Insn(m, args) => {
                let pc = e.lc();
                first_insn.get_or_insert(pc);
                for i in encode_insn(m, args, pc, &symbols, line)? {
                    e.instr(&i);
                }
            }
        }
    }
    e.flush(0);
    let entry = symbols.get("_start").copied().or(first_insn).unwrap_or(org);
    Ok(Image {
        entry,
        sections: e.sections,
        symbols,
    })
}

fn encode_insn(
    m: &str,
    args: &[&str],
    pc: u32,
    symbols: &HashMap<String, u32>,
    line: usize,
) -> Result<Vec<Instr>> {
    let need = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            err(
                line,
                format!("`{m}` expects {n} operands, got {}", args.len()),
            )
        }
    };

    if let Some((op, cc)) = alu_op(m) {
        need(3)?;
        return Ok(vec![Instr::Alu {
            op,
            cc,
            rd: reg(args[2], line)?,
            rs1: reg(args[0], line)?,
            src2: src2(args[1], symbols, line)?,
        }]);
    }
    if let Some(op) = mem_op(m) {
        need(2)?;
        let (data_idx, addr_idx) = if op.is_store() { (0, 1) } else { (1, 0) };
        let (rs1, s2) = mem_operand(args[addr_idx], symbols, line)?;
        let rd = if op.is_fp() {
            fp_reg(args[data_idx], line)?
        } else {
            reg(args[data_idx], line)?
        };
        return Ok(vec![Instr::Mem {
            op,
            rd,
            rs1,
            src2: s2,
        }]);
    }
    if let Some(cond) = branch_cond(m) {
        need(1)?;
        let target = eval_expr(args[0], symbols, line)?;
        return Ok(vec![Instr::Bicc {
            cond,
            disp22: branch_disp22(target, pc, line)?,
        }]);
    }
    if let Some(cond) = fbranch_cond(m) {
        need(1)?;
        let target = eval_expr(args[0], symbols, line)?;
        return Ok(vec![Instr::FBfcc {
            cond,
            disp22: branch_disp22(target, pc, line)?,
        }]);
    }
    if let Some(op) = fp_op(m) {
        return Ok(vec![match op {
            _ if op.is_unary() => {
                need(2)?;
                Instr::Fpop {
                    op,
                    rd: fp_reg(args[1], line)?,
                    rs1: 0,
                    rs2: fp_reg(args[0], line)?,
                }
            }
            FpOp::FCmps => {
                need(2)?;
                Instr::Fpop {
                    op,
                    rd: 0,
                    rs1: fp_reg(args[0], line)?,
                    rs2: fp_reg(args[1], line)?,
                }
            }
            _ => {
                need(3)?;
                Instr::Fpop {
                    op,
                    rd: fp_reg(args[2], line)?,
                    rs1: fp_reg(args[0], line)?,
                    rs2: fp_reg(args[1], line)?,
                }
            }
        }]);
    }

    Ok(match m {
        "sethi" => {
            need(2)?;
            let imm22 = if let Some(inner) = args[0]
                .strip_prefix("%hi(")
                .and_then(|t| t.strip_suffix(')'))
            {
                ((eval_expr(inner, symbols, line)? as u32) >> 10) & 0x3f_ffff
            } else {
                let v = eval_expr(args[0], symbols, line)?;
                if !(0..1 << 22).contains(&v) {
                    return err(line, format!("sethi immediate {v} out of range"));
                }
                v as u32
            };
            vec![Instr::Sethi {
                rd: reg(args[1], line)?,
                imm22,
            }]
        }
        "call" => {
            need(1)?;
            let target = eval_expr(args[0], symbols, line)?;
            let disp = (target - pc as i64) / 4;
            vec![Instr::Call {
                disp30: disp as i32,
            }]
        }
        "jmp" => {
            need(1)?;
            let (rs1, s2) = address(args[0], symbols, line)?;
            vec![Instr::Jmpl {
                rd: 0,
                rs1,
                src2: s2,
            }]
        }
        "jmpl" => {
            need(2)?;
            let (rs1, s2) = address(args[0], symbols, line)?;
            vec![Instr::Jmpl {
                rd: reg(args[1], line)?,
                rs1,
                src2: s2,
            }]
        }
        "ret" => vec![Instr::Jmpl {
            rd: 0,
            rs1: 31,
            src2: Src2::Imm(8),
        }],
        "retl" => vec![Instr::Jmpl {
            rd: 0,
            rs1: 15,
            src2: Src2::Imm(8),
        }],
        "save" => {
            if args.is_empty() {
                vec![Instr::Save {
                    rd: 0,
                    rs1: 0,
                    src2: Src2::Reg(0),
                }]
            } else {
                need(3)?;
                vec![Instr::Save {
                    rd: reg(args[2], line)?,
                    rs1: reg(args[0], line)?,
                    src2: src2(args[1], symbols, line)?,
                }]
            }
        }
        "restore" => {
            if args.is_empty() {
                vec![Instr::Restore {
                    rd: 0,
                    rs1: 0,
                    src2: Src2::Reg(0),
                }]
            } else {
                need(3)?;
                vec![Instr::Restore {
                    rd: reg(args[2], line)?,
                    rs1: reg(args[0], line)?,
                    src2: src2(args[1], symbols, line)?,
                }]
            }
        }
        "rd" => {
            need(2)?;
            if args[0].trim() != "%y" {
                return err(line, "only `rd %y, rd` is supported");
            }
            vec![Instr::RdY {
                rd: reg(args[1], line)?,
            }]
        }
        "wr" => match args.len() {
            2 => {
                if args[1].trim() != "%y" {
                    return err(line, "wr destination must be %y");
                }
                vec![Instr::WrY {
                    rs1: reg(args[0], line)?,
                    src2: Src2::Imm(0),
                }]
            }
            3 => {
                if args[2].trim() != "%y" {
                    return err(line, "wr destination must be %y");
                }
                vec![Instr::WrY {
                    rs1: reg(args[0], line)?,
                    src2: src2(args[1], symbols, line)?,
                }]
            }
            n => return err(line, format!("`wr` expects 2 or 3 operands, got {n}")),
        },
        "ta" => {
            need(1)?;
            let code = eval_expr(args[0], symbols, line)?;
            if !(0..128).contains(&code) {
                return err(line, "trap code must be 0..128");
            }
            vec![Instr::Trap { code: code as u8 }]
        }
        // ------------------------------------------------ synthetics
        "nop" => vec![Instr::NOP],
        "mov" => {
            need(2)?;
            vec![Instr::Alu {
                op: AluOp::Or,
                cc: false,
                rd: reg(args[1], line)?,
                rs1: 0,
                src2: src2(args[0], symbols, line)?,
            }]
        }
        "set" => {
            need(2)?;
            let rd = reg(args[1], line)?;
            if set_is_short(args[0]) {
                let v = parse_number(args[0]).unwrap();
                vec![Instr::Alu {
                    op: AluOp::Or,
                    cc: false,
                    rd,
                    rs1: 0,
                    src2: Src2::Imm(v as i32),
                }]
            } else {
                let v = eval_expr(args[0], symbols, line)? as u32;
                vec![
                    Instr::Sethi { rd, imm22: v >> 10 },
                    Instr::Alu {
                        op: AluOp::Or,
                        cc: false,
                        rd,
                        rs1: rd,
                        src2: Src2::Imm((v & 0x3ff) as i32),
                    },
                ]
            }
        }
        "cmp" => {
            need(2)?;
            vec![Instr::Alu {
                op: AluOp::Sub,
                cc: true,
                rd: 0,
                rs1: reg(args[0], line)?,
                src2: src2(args[1], symbols, line)?,
            }]
        }
        "tst" => {
            need(1)?;
            vec![Instr::Alu {
                op: AluOp::Or,
                cc: true,
                rd: 0,
                rs1: 0,
                src2: Src2::Reg(reg(args[0], line)?),
            }]
        }
        "clr" => {
            need(1)?;
            vec![Instr::Alu {
                op: AluOp::Or,
                cc: false,
                rd: reg(args[0], line)?,
                rs1: 0,
                src2: Src2::Reg(0),
            }]
        }
        "inc" | "dec" => {
            let (r, amount) = match args.len() {
                1 => (reg(args[0], line)?, 1),
                2 => (
                    reg(args[0], line)?,
                    simm13(eval_expr(args[1], symbols, line)?, line)?,
                ),
                n => return err(line, format!("`{m}` expects 1 or 2 operands, got {n}")),
            };
            let op = if m == "inc" { AluOp::Add } else { AluOp::Sub };
            vec![Instr::Alu {
                op,
                cc: false,
                rd: r,
                rs1: r,
                src2: Src2::Imm(amount),
            }]
        }
        "neg" => {
            let (rs, rd) = match args.len() {
                1 => (reg(args[0], line)?, reg(args[0], line)?),
                2 => (reg(args[0], line)?, reg(args[1], line)?),
                n => return err(line, format!("`neg` expects 1 or 2 operands, got {n}")),
            };
            vec![Instr::Alu {
                op: AluOp::Sub,
                cc: false,
                rd,
                rs1: 0,
                src2: Src2::Reg(rs),
            }]
        }
        "not" => {
            let (rs, rd) = match args.len() {
                1 => (reg(args[0], line)?, reg(args[0], line)?),
                2 => (reg(args[0], line)?, reg(args[1], line)?),
                n => return err(line, format!("`not` expects 1 or 2 operands, got {n}")),
            };
            vec![Instr::Alu {
                op: AluOp::Xnor,
                cc: false,
                rd,
                rs1: rs,
                src2: Src2::Reg(0),
            }]
        }
        other => return err(line, format!("unknown mnemonic `{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsvliw_isa::encode::decode;
    use dtsvliw_isa::insn::Instr;

    fn words(src: &str) -> Vec<Instr> {
        let img = assemble(src).expect("assembles");
        img.words().map(|(_, w)| decode(w)).collect()
    }

    #[test]
    fn basic_alu_and_labels() {
        let is = words("_start:\n add %o0, 4, %o1\n sub %o1, %o2, %o3\n");
        assert_eq!(is.len(), 2);
        assert_eq!(
            is[0],
            Instr::Alu {
                op: AluOp::Add,
                cc: false,
                rd: 9,
                rs1: 8,
                src2: Src2::Imm(4)
            }
        );
    }

    #[test]
    fn figure2_code_assembles() {
        // The paper's Figure 2(b) code, verbatim modulo register syntax.
        let src = "
            or %g0, 0, %o1
            sethi 56, %o0
            or %o0, 8, %o3
            or %g0, 0, %o2
        loop:
            ld [%o2 + %o3], %o0
            add %o1, %o0, %o1
            add %o2, 4, %o2
            subcc %o2, 39, %g0
            ble loop
            nop
        ";
        let is = words(src);
        assert_eq!(is.len(), 10);
        assert!(matches!(is[4], Instr::Mem { op: MemOp::Ld, .. }));
        assert!(is[9].is_nop());
        // ble points back 5 instructions
        assert_eq!(
            is[8],
            Instr::Bicc {
                cond: Cond::Le,
                disp22: -4
            }
        );
    }

    #[test]
    fn memory_operand_forms() {
        let is = words(
            " ld [%o0], %o1\n ld [%o0 + 8], %o1\n ld [%o0 + %o2], %o1\n ld [%o0 - 4], %o1\n st %o1, [%sp + 64]\n",
        );
        assert_eq!(
            is[0],
            Instr::Mem {
                op: MemOp::Ld,
                rd: 9,
                rs1: 8,
                src2: Src2::Imm(0)
            }
        );
        assert_eq!(
            is[1],
            Instr::Mem {
                op: MemOp::Ld,
                rd: 9,
                rs1: 8,
                src2: Src2::Imm(8)
            }
        );
        assert_eq!(
            is[2],
            Instr::Mem {
                op: MemOp::Ld,
                rd: 9,
                rs1: 8,
                src2: Src2::Reg(10)
            }
        );
        assert_eq!(
            is[3],
            Instr::Mem {
                op: MemOp::Ld,
                rd: 9,
                rs1: 8,
                src2: Src2::Imm(-4)
            }
        );
        assert_eq!(
            is[4],
            Instr::Mem {
                op: MemOp::St,
                rd: 9,
                rs1: 14,
                src2: Src2::Imm(64)
            }
        );
    }

    #[test]
    fn set_expands_by_size() {
        let short = words(" set 100, %o0\n");
        assert_eq!(short.len(), 1);
        let long = words(" set 0x12345678, %o0\n");
        assert_eq!(long.len(), 2);
        assert!(matches!(long[0], Instr::Sethi { .. }));
        // label set is always long
        let lbl = words("x: set x, %o0\n");
        assert_eq!(lbl.len(), 2);
    }

    #[test]
    fn hi_lo_relocations() {
        let img = assemble(
            ".org 0x1000\n_start: sethi %hi(data), %o0\n or %o0, %lo(data), %o0\n .org 0x8000\ndata: .word 7\n",
        )
        .unwrap();
        let data = img.symbol("data").unwrap();
        assert_eq!(data, 0x8000);
        let is: Vec<Instr> = img.words().take(2).map(|(_, w)| decode(w)).collect();
        match (is[0], is[1]) {
            (
                Instr::Sethi { imm22, .. },
                Instr::Alu {
                    src2: Src2::Imm(lo),
                    ..
                },
            ) => assert_eq!(imm22 << 10 | lo as u32, data),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn call_and_ret() {
        let is = words("_start: call f\n nop\n ta 0\nf: retl\n nop\n");
        assert_eq!(is[0], Instr::Call { disp30: 3 });
        assert_eq!(
            is[3],
            Instr::Jmpl {
                rd: 0,
                rs1: 15,
                src2: Src2::Imm(8)
            }
        );
    }

    #[test]
    fn synthetics_expand() {
        let is = words(" cmp %o0, 3\n tst %o1\n clr %o2\n inc %o3\n dec %o4, 2\n mov 5, %o5\n neg %o0, %o1\n not %o2\n");
        assert_eq!(
            is[0],
            Instr::Alu {
                op: AluOp::Sub,
                cc: true,
                rd: 0,
                rs1: 8,
                src2: Src2::Imm(3)
            }
        );
        assert_eq!(
            is[3],
            Instr::Alu {
                op: AluOp::Add,
                cc: false,
                rd: 11,
                rs1: 11,
                src2: Src2::Imm(1)
            }
        );
        assert_eq!(
            is[6],
            Instr::Alu {
                op: AluOp::Sub,
                cc: false,
                rd: 9,
                rs1: 0,
                src2: Src2::Reg(8)
            }
        );
    }

    #[test]
    fn data_directives() {
        let img = assemble(
            ".org 0x2000\nv: .word 1, 2, 3\nh: .half 0xbeef\nb: .byte 1, 2\ns: .space 6\nz: .asciz \"hi\"\n .align 4\nw: .word 9\n",
        )
        .unwrap();
        assert_eq!(img.symbol("v"), Some(0x2000));
        assert_eq!(img.symbol("h"), Some(0x200c));
        assert_eq!(img.symbol("b"), Some(0x200e));
        assert_eq!(img.symbol("s"), Some(0x2010));
        assert_eq!(img.symbol("z"), Some(0x2016));
        assert_eq!(img.symbol("w"), Some(0x201c), "aligned after 3-byte string");
        let mut mem = dtsvliw_mem::Memory::new();
        img.load_into(&mut mem);
        assert_eq!(mem.read_u32(0x2004), 2);
        assert_eq!(mem.read_u16(0x200c), 0xbeef);
        assert_eq!(mem.read_u8(0x2016), b'h');
        assert_eq!(mem.read_u8(0x2018), 0, "asciz NUL");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble(" nop\n bogus %o0\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble(" add %o0, 99999, %o1\n").unwrap_err();
        assert!(e.msg.contains("simm13"));
        let e = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
        let e = assemble(" be nowhere\n").unwrap_err();
        assert!(e.msg.contains("undefined"));
    }

    #[test]
    fn entry_points() {
        let img = assemble(" nop\n_start: nop\n").unwrap();
        assert_eq!(img.entry, DEFAULT_ORG + 4);
        let img = assemble(" nop\n nop\n").unwrap();
        assert_eq!(img.entry, DEFAULT_ORG);
    }

    #[test]
    fn comments_all_styles() {
        let is = words(" nop ! one\n nop ; two\n nop # three\n");
        assert_eq!(is.len(), 3);
    }

    #[test]
    fn symbol_arithmetic() {
        let img = assemble(".org 0x3000\ntab: .space 16\n_start: set tab+8, %o0\n").unwrap();
        let is: Vec<Instr> = img
            .words()
            .filter(|(a, _)| *a >= 0x3010)
            .map(|(_, w)| decode(w))
            .collect();
        match (is[0], is[1]) {
            (
                Instr::Sethi { imm22, .. },
                Instr::Alu {
                    src2: Src2::Imm(lo),
                    ..
                },
            ) => {
                assert_eq!(imm22 << 10 | lo as u32, 0x3008)
            }
            other => panic!("{other:?}"),
        }
    }
}
