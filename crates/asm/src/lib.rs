//! A two-pass assembler for the SPARC V7 subset.
//!
//! The paper's benchmarks were SPARC binaries produced by `gcc`; this
//! assembler (together with the `dtsvliw-minicc` compiler that emits its
//! syntax) is the reproduction's toolchain. Supported syntax follows the
//! SPARC assembler conventions — destination-last operands, `[reg +
//! off]` memory addressing, `%hi()`/`%lo()` relocations — plus the usual
//! synthetic instructions (`set`, `mov`, `cmp`, `ret`, ...).
//!
//! ```
//! let src = "
//! _start:
//!     set 10, %o0
//!     call double      ! delayed: the nop below executes first
//!     nop
//!     ta 0             ! halt
//! double:
//!     retl
//!     nop
//! ";
//! let image = dtsvliw_asm::assemble(src).unwrap();
//! assert_eq!(image.entry, image.symbol("_start").unwrap());
//! ```

mod image;
mod parse;

pub use image::Image;
pub use parse::{assemble, assemble_at, AsmError};
