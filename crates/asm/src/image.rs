//! Assembled program images.

use dtsvliw_mem::Memory;
use std::collections::HashMap;

/// The output of the assembler: byte sections at fixed addresses plus
/// the symbol table.
#[derive(Debug, Clone, Default)]
pub struct Image {
    /// Program entry point (`_start` if defined, else the first
    /// instruction assembled).
    pub entry: u32,
    /// `(base address, bytes)` pairs, in assembly order.
    pub sections: Vec<(u32, Vec<u8>)>,
    /// Label addresses.
    pub symbols: HashMap<String, u32>,
}

impl Image {
    /// Copy every section into `mem`.
    pub fn load_into(&self, mem: &mut Memory) {
        for (base, bytes) in &self.sections {
            mem.load(*base, bytes);
        }
    }

    /// Look up a label.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Total bytes across sections.
    pub fn size(&self) -> usize {
        self.sections.iter().map(|(_, b)| b.len()).sum()
    }

    /// Iterate over the assembled words of all sections (diagnostics).
    pub fn words(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.sections.iter().flat_map(|(base, bytes)| {
            bytes.chunks_exact(4).enumerate().map(move |(i, c)| {
                (
                    base + 4 * i as u32,
                    u32::from_be_bytes([c[0], c[1], c[2], c[3]]),
                )
            })
        })
    }
}
