//! Fuzz-style robustness tests for the assembler front end: arbitrary
//! input must produce `Ok` or a typed `Err` — never a panic. The parser
//! sits on the fault-campaign input path (`dtsvliw_faultsim` assembles
//! workload sources at startup), so a crash here takes the whole
//! campaign down.
//!
//! The seeded-PRNG sweeps below always run; the proptest-based property
//! at the bottom is gated behind the off-by-default `proptest` feature
//! like the rest of the suite (the external `proptest` crate is
//! unavailable in the offline build environment).

use dtsvliw_asm::assemble;

/// The xorshift* generator the fault injector uses; hand-rolled here so
/// the sweep stays deterministic without a dev-dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Bytes drawn from the characters the tokeniser actually dispatches
/// on, so the sweep spends its budget past the first character.
const ALPHABET: &[u8] = b"abcxyz%!,.+-_:[]()0189 \t\n\"\\#@gosl";

fn assemble_must_not_panic(src: &str) {
    // `assemble` returning Err is fine; unwinding is the bug.
    let _ = assemble(src);
}

/// Raw byte soup (valid UTF-8 only, as `assemble` takes `&str`).
#[test]
fn random_ascii_never_panics() {
    let mut rng = Rng(0x5eed_0001);
    for _ in 0..2000 {
        let len = (rng.next() % 80) as usize;
        let src: String = (0..len)
            .map(|_| ALPHABET[(rng.next() as usize) % ALPHABET.len()] as char)
            .collect();
        assemble_must_not_panic(&src);
    }
}

/// Structured soup: well-formed lines with one field replaced by junk,
/// which reaches much deeper into operand parsing than raw bytes do.
#[test]
fn mutated_instructions_never_panic() {
    let templates = [
        "_start: add %o0, {}, %o1\n",
        "_start: ld [{}], %o2\n",
        "_start: st %o1, [%o0 + {}]\n",
        "_start: set {}, %g1\n",
        "_start: ba {}\n nop\n",
        "{}: nop\n",
        ".org {}\n_start: nop\n",
        ".space {}\n",
        "_start: {} %o0, %o1, %o2\n",
    ];
    let junk = [
        "",
        "%",
        "%o8",
        "%o-1",
        "0x",
        "0x10000000000",
        "-",
        "+4096",
        "-4097",
        "%hi",
        "%hi(",
        "%hi(_start",
        "lo(x)",
        "[",
        "]",
        "[[%o0]]",
        "1 2",
        "_",
        "9lbl",
        "..",
        "\u{7f}",
        "ta",
        "4294967296",
        "-2147483649",
    ];
    for t in templates {
        for j in junk {
            assemble_must_not_panic(&t.replace("{}", j));
        }
    }
}

/// Line-splice soup: shuffle fragments of a valid program so labels
/// dangle, delay slots vanish, and directives land mid-instruction.
#[test]
fn spliced_program_fragments_never_panic() {
    let fragments = [
        "_start:",
        " set 0x8000, %o0",
        " ld [%o0 + 64], %g2",
        "loop:",
        " cmp %o1, 4",
        " bl loop",
        " nop",
        ".align 4",
        ".org 0x1000",
        " ta 0",
        "! comment",
    ];
    let mut rng = Rng(0x5eed_0002);
    for _ in 0..500 {
        let n = 1 + (rng.next() % 12) as usize;
        let src: String = (0..n)
            .map(|_| fragments[(rng.next() as usize) % fragments.len()])
            .collect::<Vec<_>>()
            .join("\n");
        assemble_must_not_panic(&src);
    }
}

#[cfg(feature = "proptest")]
mod properties {
    use super::assemble_must_not_panic;
    use proptest::prelude::*;

    proptest! {
        /// Fully arbitrary strings — the strongest form of the
        /// never-panic claim.
        #[test]
        fn arbitrary_strings_never_panic(src in ".{0,200}") {
            assemble_must_not_panic(&src);
        }

        /// Arbitrary printable-ish lines joined with newlines, biased
        /// toward the assembler's own vocabulary.
        #[test]
        fn assembler_flavoured_soup_never_panics(
            lines in prop::collection::vec("[ -~]{0,40}", 0..10)
        ) {
            assemble_must_not_panic(&lines.join("\n"));
        }
    }
}
