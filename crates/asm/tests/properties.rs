//! Property tests over the assembler: disassemble → reassemble fixed
//! points and image-loading invariants.
//!
//! Gated behind the off-by-default `proptest` feature: the external
//! `proptest` crate is unavailable in the offline build environment
//! (restore the dev-dependency to run these).
#![cfg(feature = "proptest")]

use dtsvliw_asm::assemble;
use dtsvliw_isa::encode::decode;
use dtsvliw_isa::insn::{AluOp, Instr, MemOp, Src2};
use proptest::prelude::*;

fn arb_alu() -> impl Strategy<Value = Instr> {
    (
        prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::And),
            Just(AluOp::Or),
            Just(AluOp::Xor),
            Just(AluOp::Xnor),
        ],
        any::<bool>(),
        1u8..32,
        0u8..32,
        prop_oneof![
            (0u8..32).prop_map(Src2::Reg),
            (-4096i32..4096).prop_map(Src2::Imm)
        ],
    )
        .prop_map(|(op, cc, rd, rs1, src2)| Instr::Alu {
            op,
            cc,
            rd,
            rs1,
            src2,
        })
}

fn arb_mem() -> impl Strategy<Value = Instr> {
    (
        prop_oneof![
            Just(MemOp::Ld),
            Just(MemOp::Ldub),
            Just(MemOp::Ldsb),
            Just(MemOp::Lduh),
            Just(MemOp::Ldsh),
            Just(MemOp::St),
            Just(MemOp::Stb),
            Just(MemOp::Sth),
        ],
        0u8..32,
        0u8..32,
        prop_oneof![
            (0u8..32).prop_map(Src2::Reg),
            (-4096i32..4096).prop_map(Src2::Imm)
        ],
    )
        .prop_map(|(op, rd, rs1, src2)| Instr::Mem { op, rd, rs1, src2 })
}

proptest! {
    /// Disassembling an instruction and assembling the text reproduces
    /// the instruction (fixed point of the round trip).
    #[test]
    fn disassembly_reassembles(i in prop_oneof![arb_alu(), arb_mem()]) {
        prop_assume!(!i.is_nop()); // `nop` prints as a synthetic
        let text = format!("_start: {i}\n");
        let img = assemble(&text).unwrap_or_else(|e| panic!("`{i}` rejected: {e}"));
        let (_, word) = img.words().next().expect("one instruction");
        prop_assert_eq!(decode(word), i, "text was `{}`", i);
    }

    /// Labels resolve to their instruction's address regardless of
    /// preceding padding.
    #[test]
    fn label_addresses_track_layout(pad in 0u32..64) {
        let src = format!(
            ".org 0x1000\n_start: nop\n .space {}\n .align 4\nhere: nop\n",
            pad * 3
        );
        let img = assemble(&src).unwrap();
        let here = img.symbol("here").unwrap();
        prop_assert_eq!(here % 4, 0);
        prop_assert!(here >= 0x1004 + pad * 3);
        // The word at `here` is the nop.
        let mut mem = dtsvliw_mem::Memory::new();
        img.load_into(&mut mem);
        prop_assert!(decode(mem.read_u32(here)).is_nop());
    }

    /// Branch displacement encoding survives for any target in range.
    #[test]
    fn branch_targets_resolve(gap in 1u32..1000) {
        let nops = "    nop\n".repeat(gap as usize);
        let src = format!("_start: ba target\n nop\n{nops}target: nop\n");
        let img = assemble(&src).unwrap();
        let (pc0, w) = img.words().next().unwrap();
        match decode(w) {
            Instr::Bicc { disp22, .. } => {
                let target = pc0.wrapping_add((disp22 as u32).wrapping_mul(4));
                prop_assert_eq!(target, img.symbol("target").unwrap());
            }
            other => prop_assert!(false, "expected ba, got {:?}", other),
        }
    }
}

#[test]
fn set_synthesises_any_u32() {
    for v in [
        0u32,
        1,
        4095,
        4096,
        0xffff_ffff,
        0x8000_0000,
        0x0010_0000,
        0x1234_5678,
    ] {
        let src = format!("_start: set {v:#x}, %o0\n ta 0\n");
        let img = assemble(&src).unwrap();
        let mut m = dtsvliw_primary::RefMachine::new(&img);
        m.run(10).unwrap();
        assert_eq!(m.state.get(dtsvliw_isa::regs::r::O0), v, "set {v:#x}");
    }
}
