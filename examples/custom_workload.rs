//! Bring your own workload: write minicc (or raw SPARC assembly), run it
//! on both the DTSVLIW and the DIF baseline, and compare.
//!
//! ```sh
//! cargo run --release --example custom_workload            # built-in demo
//! cargo run --release --example custom_workload my_prog.mc # your program
//! ```

use dtsvliw_core::{Machine, MachineConfig};
use dtsvliw_dif::DifMachine;
use dtsvliw_minicc::compile_to_image;

const DEMO: &str = "
// String reversal + scoring over a byte arena.
int arena[256];

fn write_str(off, n) {
    var base = addr(arena);
    for (reg i = 0; i < n; i = i + 1) {
        sb(base + off + i, 97 + ((i * 7 + off) % 26));
    }
    return n;
}

fn reverse(off, n) {
    var base = addr(arena);
    reg i = 0;
    reg j = n - 1;
    while (i < j) {
        var t = lb(base + off + i);
        sb(base + off + i, lb(base + off + j));
        sb(base + off + j, t);
        i = i + 1;
        j = j - 1;
    }
    return 0;
}

fn score(off, n) {
    var base = addr(arena);
    reg s = 0;
    for (reg i = 0; i < n; i = i + 1) {
        s = s + lb(base + off + i) * (i + 1);
    }
    return s;
}

fn main() {
    reg total = 0;
    for (reg round = 0; round < 40; round = round + 1) {
        var n = 16 + (round % 48);
        write_str(0, n);
        var before = score(0, n);
        reverse(0, n);
        reverse(0, n);               // double reverse is identity
        assert(score(0, n) == before, 1);
        total = total + (before & 255);
    }
    return total & 0x7fff;
}
";

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => DEMO.to_string(),
    };
    let img = compile_to_image(&src).unwrap_or_else(|e| panic!("compile error: {e}"));

    let mut dtsvliw = Machine::new(MachineConfig::feasible_paper(), &img);
    let r1 = dtsvliw.run(20_000_000).expect("dtsvliw run");
    let s1 = dtsvliw.stats();

    let mut dif = DifMachine::new(&img);
    let r2 = dif.run(20_000_000).expect("dif run");
    let s2 = dif.stats();

    println!("{:<22}{:>12}{:>12}", "", "DTSVLIW", "DIF");
    println!(
        "{:<22}{:>12?}{:>12?}",
        "exit code", r1.exit_code, r2.exit_code
    );
    println!(
        "{:<22}{:>12}{:>12}",
        "instructions", s1.instructions, s2.instructions
    );
    println!("{:<22}{:>12}{:>12}", "cycles", s1.cycles, s2.cycles);
    println!("{:<22}{:>12.2}{:>12.2}", "IPC", s1.ipc(), s2.ipc());
    println!(
        "{:<22}{:>11.1}%{:>11.1}%",
        "VLIW-mode cycles",
        100.0 * s1.vliw_cycle_share(),
        100.0 * s2.vliw_cycle_share()
    );
    assert_eq!(
        r1.exit_code, r2.exit_code,
        "both machines agree architecturally"
    );
}
