//! Quickstart: compile a small program with minicc, run it on the
//! DTSVLIW machine, and read the performance counters.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dtsvliw_core::{Machine, MachineConfig};
use dtsvliw_minicc::compile_to_image;

fn main() {
    // A little program in the minicc language (the reproduction's gcc
    // stand-in): repeated dot products.
    let image = compile_to_image(
        "
        int a[256];
        int b[256];

        fn fill() {
            for (reg i = 0; i < 256; i = i + 1) {
                a[i] = i + 1;
                b[i] = 256 - i;
            }
            return 0;
        }

        fn dot() {
            reg acc = 0;
            for (reg i = 0; i < 256; i = i + 1) {
                acc = acc + a[i] * b[i];
            }
            return acc;
        }

        fn main() {
            fill();
            reg best = 0;
            for (reg round = 0; round < 10; round = round + 1) {
                var d = dot();
                if (d > best) { best = d; }
            }
            putu(best);
            putc(10);
            return best & 0xffff;
        }
    ",
    )
    .expect("compiles");

    // The paper's feasible machine: 10 functional units (4 integer,
    // 2 load/store, 2 FP, 2 branch), 8 long instructions per block,
    // 192-Kbyte VLIW Cache, 32-Kbyte L1 caches.
    let mut machine = Machine::new(MachineConfig::feasible_paper(), &image);
    let outcome = machine
        .run(10_000_000)
        .expect("runs (verified against the test machine)");

    let stats = machine.stats();
    println!("program output : {}", machine.output_string().trim_end());
    println!("exit code      : {:?}", outcome.exit_code);
    println!("instructions   : {}", stats.instructions);
    println!("cycles         : {}", stats.cycles);
    println!("IPC            : {:.2}", stats.ipc());
    println!("VLIW cycles    : {:.1}%", 100.0 * stats.vliw_cycle_share());
    println!("blocks built   : {}", stats.sched.blocks);
    println!("splits / copies: {}", stats.sched.splits);
    println!(
        "renaming regs  : {} int, {} flag, {} mem",
        stats.sched.rename_hw.int, stats.sched.rename_hw.flag, stats.sched.rename_hw.mem
    );
}
