//! The paper's running example (Figure 2): the vector-sum loop,
//! scheduled by the FCFS algorithm into a 3-wide, 4-deep scheduling
//! list. Prints the scheduling list after each cycle so the snapshots
//! of the paper's figure can be watched forming — including the split
//! of `add %o2, 4, %o2` in cycle 9 and the redirected `subcc` reading
//! the renaming register.
//!
//! ```sh
//! cargo run --release --example vector_sum
//! ```

use dtsvliw_asm::assemble;
use dtsvliw_primary::RefMachine;
use dtsvliw_sched::scheduler::{SchedConfig, Scheduler};

const FIGURE2: &str = "
    .org 0x1000
_start:
    or %g0, 0, %o1        ! 1: sum = 0
    sethi 56, %o0         ! 2
    or %o0, 8, %o3        ! 3: base of a[]
    or %g0, 0, %o2        ! 4: 4*i
loop:
    ld [%o2 + %o3], %o0   ! 5
    add %o1, %o0, %o1     ! 6: sum += a[i]
    add %o2, 4, %o2       ! 7
    subcc %o2, 39, %g0    ! 8
    ble loop              ! 9
    nop                   ! 10
    mov %o1, %o0          ! return the sum
    ta 0
    .org 0xe008
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
";

fn main() {
    let img = assemble(FIGURE2).expect("assembles");
    let mut machine = RefMachine::new(&img);
    let mut sched = Scheduler::new(SchedConfig::homogeneous(3, 4));

    for cycle in 1..=12 {
        let step = machine.step().expect("executes");
        sched.tick();
        sched.insert(&step.dyn_instr, machine.state.resident);

        println!(
            "--- after cycle {cycle} (completed: {}) ---",
            step.dyn_instr.instr
        );
        for (i, row) in sched.dump().iter().enumerate() {
            let cells: Vec<&str> = row
                .iter()
                .map(|c| if c.is_empty() { "·" } else { c.as_str() })
                .collect();
            println!("  LI{i}: {}", cells.join("  |  "));
        }
    }

    // Let it run to completion for the answer.
    loop {
        let s = machine.step().expect("executes");
        if let Some(h) = s.halt {
            println!("\nprogram result: {h:?} (sum of 1..=10 = 55)");
            break;
        }
    }
}
