//! Explore how block geometry changes DTSVLIW performance on one
//! workload — a miniature interactive version of the paper's Figure 5.
//!
//! ```sh
//! cargo run --release --example geometry_explorer [workload] [budget]
//! cargo run --release --example geometry_explorer ijpeg 500000
//! ```

use dtsvliw_core::{Machine, MachineConfig};
use dtsvliw_workloads::{by_name, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = args.get(1).map(String::as_str).unwrap_or("compress");
    let budget: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300_000);

    let w = by_name(workload, Scale::Small).unwrap_or_else(|| {
        panic!(
            "unknown workload `{workload}` (try compress, gcc, go, ijpeg, m88ksim, perl, vortex, xlisp)"
        )
    });
    let img = w.image();
    println!("workload: {} — {}", w.name, w.description);
    println!("budget  : {budget} sequential instructions\n");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "geom", "IPC", "vliw%", "blocks", "splits", "util%"
    );

    for (width, height) in [
        (1, 4),
        (2, 4),
        (4, 4),
        (4, 8),
        (8, 4),
        (8, 8),
        (8, 16),
        (16, 8),
        (16, 16),
    ] {
        let mut m = Machine::new(MachineConfig::ideal(width, height), &img);
        m.run(budget).expect("verified run");
        let s = m.stats();
        println!(
            "{:>6} {:>8.2} {:>7.1}% {:>8} {:>8} {:>7.1}%",
            format!("{width}x{height}"),
            s.ipc(),
            100.0 * s.vliw_cycle_share(),
            s.sched.blocks,
            s.sched.splits,
            100.0 * s.sched.slot_utilisation(),
        );
    }
}
