//! Umbrella crate for the DTSVLIW reproduction: re-exports the pieces a
//! downstream user needs to compile, assemble and simulate programs.
//! See the workspace README for the architecture tour, DESIGN.md for the
//! system inventory and EXPERIMENTS.md for the paper-vs-measured
//! results. The `examples/` directory holds runnable entry points
//! (`quickstart`, `vector_sum`, `geometry_explorer`, `custom_workload`).

pub use dtsvliw_asm as asm;
pub use dtsvliw_core as core_machine;
pub use dtsvliw_dif as dif;
pub use dtsvliw_isa as isa;
pub use dtsvliw_mem as mem;
pub use dtsvliw_minicc as minicc;
pub use dtsvliw_primary as primary;
pub use dtsvliw_sched as sched;
pub use dtsvliw_vliw as vliw;
pub use dtsvliw_workloads as workloads;

/// Everything needed for the common flow: compile → machine → stats.
pub mod prelude {
    pub use dtsvliw_asm::assemble;
    pub use dtsvliw_core::{Machine, MachineConfig, RunStats, ScheduleMode};
    pub use dtsvliw_dif::DifMachine;
    pub use dtsvliw_minicc::compile_to_image;
    pub use dtsvliw_workloads::{all as all_workloads, by_name as workload, Scale};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_common_flow() {
        let image = compile_to_image("fn main() { return 6 * 7; }").unwrap();
        let mut m = Machine::new(MachineConfig::ideal(4, 4), &image);
        let out = m.run(100_000).unwrap();
        assert_eq!(out.exit_code, Some(42));
    }
}
